#include "store/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "store/codec.h"
#include "util/string_util.h"

namespace gvex {

namespace {

constexpr uint8_t kMetaTag = 1;
constexpr uint8_t kViewTag = 2;
constexpr uint8_t kPostingTag = 3;
constexpr uint8_t kFooterTag = 4;

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".gvxs";
constexpr char kDeltaPrefix[] = "delta-";
constexpr char kDeltaSuffix[] = ".gvxd";

// Width of the zero-padded epoch in canonical store file names (%020llu).
constexpr size_t kEpochDigits = 20;

// Parses "<prefix><20 digits><suffix>" into the digits' value. Only the
// CANONICAL form is accepted: an unpadded or overflowing name would list
// an epoch whose canonical filename does not exist, sending recovery (and
// pruning) after a phantom file.
Result<uint64_t> ParseEpochFileName(const std::string& name,
                                    const std::string& prefix,
                                    const std::string& suffix) {
  if (name.size() != prefix.size() + kEpochDigits + suffix.size() ||
      !StartsWith(name, prefix) ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return Status::NotFound("not a store file name: " + name);
  }
  const std::string digits = name.substr(prefix.size(), kEpochDigits);
  uint64_t epoch = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::NotFound("not a store file name: " + name);
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (epoch > (UINT64_MAX - digit) / 10) {
      return Status::NotFound("epoch overflows in file name: " + name);
    }
    epoch = epoch * 10 + digit;
  }
  return epoch;
}

// Epochs of every "<prefix>NNN<suffix>" file in `dir`, ascending.
Result<std::vector<uint64_t>> ListEpochFiles(const std::string& dir,
                                             const std::string& prefix,
                                             const std::string& suffix) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError(StrFormat("cannot list %s: %s", dir.c_str(),
                                     std::strerror(errno)));
  }
  std::vector<uint64_t> epochs;
  while (struct dirent* entry = ::readdir(d)) {
    auto epoch = ParseEpochFileName(entry->d_name, prefix, suffix);
    if (epoch.ok()) epochs.push_back(epoch.value());
  }
  ::closedir(d);
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

// Atomic file write shared by full snapshots and deltas: write to
// `<path>.tmp`, fsync the bytes, rename into place, fsync the directory
// entry — a crash at any point leaves either the old file or the new one,
// never a torn mix (and recovery ignores stray *.tmp leftovers).
Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.good()) return Status::IOError("cannot open " + tmp);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    f.flush();
    if (!f.good()) return Status::IOError("write failed for " + tmp);
  }
  // fsync before rename: the rename must never publish an unflushed image
  // (Compact resets the WAL on the strength of this file, so a skipped or
  // failed fsync here could lose acknowledged admissions on power loss).
  FILE* f = std::fopen(tmp.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot reopen %s for fsync: %s",
                                     tmp.c_str(), std::strerror(errno)));
  }
  const bool synced = ::fsync(::fileno(f)) == 0;
  const int sync_errno = errno;
  std::fclose(f);
  if (!synced) {
    (void)std::remove(tmp.c_str());
    return Status::IOError(StrFormat("fsync failed for %s: %s", tmp.c_str(),
                                     std::strerror(sync_errno)));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError(StrFormat("rename %s -> %s failed: %s",
                                     tmp.c_str(), path.c_str(),
                                     std::strerror(errno)));
  }
  // The rename is a directory-entry mutation: without a directory fsync a
  // power loss can undo it even though the file bytes are on disk.
  return SyncParentDir(path);
}

void EncodeMatchOptions(const MatchOptions& m, std::string* dst) {
  PutVarint64(dst, static_cast<uint64_t>(m.semantics));
  PutZigzag64(dst, m.max_matches);
  PutZigzag64(dst, m.max_steps);
}

Status DecodeMatchOptions(ByteReader* in, MatchOptions* m) {
  uint64_t semantics = 0;
  GVEX_RETURN_NOT_OK(in->GetVarint64(&semantics));
  if (semantics > static_cast<uint64_t>(MatchSemantics::kNonInduced)) {
    return Status::InvalidArgument("unknown match semantics");
  }
  int64_t max_matches = 0, max_steps = 0;
  GVEX_RETURN_NOT_OK(in->GetZigzag64(&max_matches));
  GVEX_RETURN_NOT_OK(in->GetZigzag64(&max_steps));
  m->semantics = static_cast<MatchSemantics>(semantics);
  m->max_matches = static_cast<int>(max_matches);
  m->max_steps = max_steps;
  return Status::OK();
}

void EncodePosting(const StoredPostings& p, std::string* dst) {
  PutLengthPrefixed(dst, p.code);
  PutVarint64(dst, p.labels.size());
  for (int l : p.labels) PutZigzag64(dst, l);
  PutVarint64(dst, p.tier_position.size());
  for (const auto& [label, pos] : p.tier_position) {
    PutZigzag64(dst, label);
    PutZigzag64(dst, pos);
  }
  static const CoverageBits kNoBits;
  const CoverageBits& sb = p.subgraph_bits ? *p.subgraph_bits : kNoBits;
  PutVarint64(dst, sb.size());
  for (const auto& [label, bits] : sb) {
    PutZigzag64(dst, label);
    PutVarint64(dst, bits.size());
    for (uint64_t w : bits) PutFixed64(dst, w);
  }
  PutVarint64(dst, p.db_graphs.size());
  for (int g : p.db_graphs) PutZigzag64(dst, g);
}

Status DecodePosting(ByteReader* in, StoredPostings* p) {
  StoredPostings out;
  GVEX_RETURN_NOT_OK(in->GetLengthPrefixed(&out.code));
  uint64_t n = 0;
  GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &n));
  out.labels.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    int64_t l = 0;
    GVEX_RETURN_NOT_OK(in->GetZigzag64(&l));
    out.labels.push_back(static_cast<int>(l));
  }
  GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &n));
  for (uint64_t i = 0; i < n; ++i) {
    int64_t label = 0, pos = 0;
    GVEX_RETURN_NOT_OK(in->GetZigzag64(&label));
    GVEX_RETURN_NOT_OK(in->GetZigzag64(&pos));
    out.tier_position.emplace(static_cast<int>(label),
                              static_cast<int>(pos));
  }
  GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &n));
  CoverageBits subgraph_bits;
  for (uint64_t i = 0; i < n; ++i) {
    int64_t label = 0;
    GVEX_RETURN_NOT_OK(in->GetZigzag64(&label));
    uint64_t words = 0;
    GVEX_RETURN_NOT_OK(in->GetCount(in->remaining() / 8, &words));
    std::vector<uint64_t> bits(static_cast<size_t>(words));
    for (uint64_t w = 0; w < words; ++w) {
      GVEX_RETURN_NOT_OK(in->GetFixed64(&bits[static_cast<size_t>(w)]));
    }
    subgraph_bits.emplace(static_cast<int>(label), std::move(bits));
  }
  out.subgraph_bits =
      std::make_shared<const CoverageBits>(std::move(subgraph_bits));
  GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &n));
  out.db_graphs.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    int64_t g = 0;
    GVEX_RETURN_NOT_OK(in->GetZigzag64(&g));
    out.db_graphs.push_back(static_cast<int>(g));
  }
  *p = std::move(out);
  return Status::OK();
}

}  // namespace

std::string SnapshotFileName(uint64_t epoch) {
  return StrFormat("%s%020llu%s", kSnapshotPrefix,
                   static_cast<unsigned long long>(epoch), kSnapshotSuffix);
}

Result<uint64_t> ParseSnapshotFileName(const std::string& name) {
  return ParseEpochFileName(name, kSnapshotPrefix, kSnapshotSuffix);
}

std::string DeltaFileName(uint64_t epoch) {
  return StrFormat("%s%020llu%s", kDeltaPrefix,
                   static_cast<unsigned long long>(epoch), kDeltaSuffix);
}

Result<uint64_t> ParseDeltaFileName(const std::string& name) {
  return ParseEpochFileName(name, kDeltaPrefix, kDeltaSuffix);
}

std::string SerializeSnapshot(const SnapshotData& data) {
  std::string out;
  PutStoreHeader(&out, StoreFileKind::kSnapshot);

  std::string meta(1, static_cast<char>(kMetaTag));
  PutVarint64(&meta, data.epoch);
  EncodeMatchOptions(data.match, &meta);
  PutVarint64(&meta, data.database_indexed ? 1 : 0);
  PutVarint64(&meta, data.views.size());
  PutVarint64(&meta, data.postings.size());
  PutFramedRecord(&out, meta);

  for (const auto& [label, view] : data.views) {
    (void)label;  // the view record carries its own label
    std::string payload(1, static_cast<char>(kViewTag));
    EncodeView(view, &payload);
    PutFramedRecord(&out, payload);
  }
  for (const StoredPostings& p : data.postings) {
    std::string payload(1, static_cast<char>(kPostingTag));
    EncodePosting(p, &payload);
    PutFramedRecord(&out, payload);
  }

  std::string footer(1, static_cast<char>(kFooterTag));
  PutVarint64(&footer, data.views.size());
  PutVarint64(&footer, data.postings.size());
  PutFramedRecord(&out, footer);
  return out;
}

Result<SnapshotData> ParseSnapshot(const std::string& bytes) {
  ByteReader in(bytes);
  GVEX_RETURN_NOT_OK(in.GetStoreHeader(StoreFileKind::kSnapshot));

  std::string payload;
  GVEX_RETURN_NOT_OK(in.GetFramedRecord(&payload));
  if (payload.empty() || static_cast<uint8_t>(payload[0]) != kMetaTag) {
    return Status::InvalidArgument("snapshot missing meta record");
  }
  SnapshotData data;
  uint64_t db_indexed = 0, num_views = 0, num_postings = 0;
  {
    ByteReader meta(payload.data() + 1, payload.size() - 1);
    GVEX_RETURN_NOT_OK(meta.GetVarint64(&data.epoch));
    GVEX_RETURN_NOT_OK(DecodeMatchOptions(&meta, &data.match));
    GVEX_RETURN_NOT_OK(meta.GetVarint64(&db_indexed));
    if (db_indexed > 1) {
      return Status::InvalidArgument("bad database_indexed flag");
    }
    GVEX_RETURN_NOT_OK(meta.GetCount(bytes.size(), &num_views));
    GVEX_RETURN_NOT_OK(meta.GetCount(bytes.size(), &num_postings));
    if (!meta.done()) {
      return Status::InvalidArgument("trailing bytes in snapshot meta");
    }
  }
  data.database_indexed = db_indexed != 0;

  for (uint64_t i = 0; i < num_views; ++i) {
    GVEX_RETURN_NOT_OK(in.GetFramedRecord(&payload));
    if (payload.empty() || static_cast<uint8_t>(payload[0]) != kViewTag) {
      return Status::InvalidArgument("expected a snapshot view record");
    }
    ByteReader rec(payload.data() + 1, payload.size() - 1);
    ExplanationView view;
    GVEX_RETURN_NOT_OK(DecodeView(&rec, &view));
    if (!rec.done()) {
      return Status::InvalidArgument("trailing bytes in view record");
    }
    const int label = view.label;
    if (!data.views.emplace(label, std::move(view)).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate view for label %d", label));
    }
  }
  for (uint64_t i = 0; i < num_postings; ++i) {
    GVEX_RETURN_NOT_OK(in.GetFramedRecord(&payload));
    if (payload.empty() || static_cast<uint8_t>(payload[0]) != kPostingTag) {
      return Status::InvalidArgument("expected a snapshot posting record");
    }
    ByteReader rec(payload.data() + 1, payload.size() - 1);
    StoredPostings posting;
    GVEX_RETURN_NOT_OK(DecodePosting(&rec, &posting));
    if (!rec.done()) {
      return Status::InvalidArgument("trailing bytes in posting record");
    }
    data.postings.push_back(std::move(posting));
  }

  GVEX_RETURN_NOT_OK(in.GetFramedRecord(&payload));
  if (payload.empty() || static_cast<uint8_t>(payload[0]) != kFooterTag) {
    return Status::InvalidArgument("snapshot missing footer record");
  }
  {
    ByteReader rec(payload.data() + 1, payload.size() - 1);
    uint64_t views_again = 0, postings_again = 0;
    GVEX_RETURN_NOT_OK(rec.GetVarint64(&views_again));
    GVEX_RETURN_NOT_OK(rec.GetVarint64(&postings_again));
    if (views_again != num_views || postings_again != num_postings ||
        !rec.done()) {
      return Status::InvalidArgument("snapshot footer mismatch");
    }
  }
  if (!in.done()) {
    return Status::InvalidArgument("trailing bytes after snapshot footer");
  }

  // Cross-validate postings against views before returning: the warm-start
  // index (PatternIndex::FromStored) serves these structures under
  // build-time invariants — every tier pattern has a posting, coverage
  // bitsets are sized to their view's subgraph list — so a CRC-valid but
  // logically inconsistent file must fail the load here, not crash (or
  // silently mis-answer) a query later.
  std::map<std::string, const StoredPostings*> by_code;
  for (const StoredPostings& p : data.postings) {
    if (!by_code.emplace(p.code, &p).second) {
      return Status::InvalidArgument("duplicate posting code");
    }
  }
  for (const auto& [label, view] : data.views) {
    for (size_t pos = 0; pos < view.patterns.size(); ++pos) {
      if (by_code.find(view.patterns[pos].canonical_code()) ==
          by_code.end()) {
        return Status::InvalidArgument(StrFormat(
            "tier pattern %zu of label %d has no posting", pos, label));
      }
    }
  }
  for (const StoredPostings& p : data.postings) {
    std::vector<int> tier_labels;
    tier_labels.reserve(p.tier_position.size());
    for (const auto& [label, pos] : p.tier_position) {
      auto view = data.views.find(label);
      if (view == data.views.end() || pos < 0 ||
          static_cast<size_t>(pos) >= view->second.patterns.size() ||
          view->second.patterns[static_cast<size_t>(pos)].canonical_code() !=
              p.code) {
        return Status::InvalidArgument(StrFormat(
            "posting tier position (%d, %d) does not match its view", label,
            pos));
      }
      tier_labels.push_back(label);
    }
    if (p.labels != tier_labels) {
      return Status::InvalidArgument(
          "posting labels disagree with its tier positions");
    }
    static const CoverageBits kNoBits;
    const CoverageBits& sb = p.subgraph_bits ? *p.subgraph_bits : kNoBits;
    if (sb.size() != data.views.size()) {
      return Status::InvalidArgument(
          "posting coverage bitsets do not cover every view label");
    }
    for (const auto& [label, bits] : sb) {
      auto view = data.views.find(label);
      if (view == data.views.end() ||
          bits.size() != (view->second.subgraphs.size() + 63) / 64) {
        return Status::InvalidArgument(StrFormat(
            "posting coverage bitset for label %d does not match its view",
            label));
      }
    }
  }
  return data;
}

Status SaveSnapshot(const std::string& path, const SnapshotData& data) {
  return AtomicWriteFile(path, SerializeSnapshot(data));
}

std::string SerializeDelta(const DeltaData& data) {
  std::string out;
  PutStoreHeader(&out, StoreFileKind::kDelta);

  std::string meta(1, static_cast<char>(kMetaTag));
  PutVarint64(&meta, data.epoch);
  PutVarint64(&meta, data.parent_epoch);
  PutVarint64(&meta, data.views.size());
  PutFramedRecord(&out, meta);

  for (const auto& [label, view] : data.views) {
    (void)label;  // the view record carries its own label
    std::string payload(1, static_cast<char>(kViewTag));
    EncodeView(view, &payload);
    PutFramedRecord(&out, payload);
  }

  std::string footer(1, static_cast<char>(kFooterTag));
  PutVarint64(&footer, data.views.size());
  PutFramedRecord(&out, footer);
  return out;
}

Result<DeltaData> ParseDelta(const std::string& bytes) {
  ByteReader in(bytes);
  GVEX_RETURN_NOT_OK(in.GetStoreHeader(StoreFileKind::kDelta));

  std::string payload;
  GVEX_RETURN_NOT_OK(in.GetFramedRecord(&payload));
  if (payload.empty() || static_cast<uint8_t>(payload[0]) != kMetaTag) {
    return Status::InvalidArgument("delta missing meta record");
  }
  DeltaData data;
  uint64_t num_views = 0;
  {
    ByteReader meta(payload.data() + 1, payload.size() - 1);
    GVEX_RETURN_NOT_OK(meta.GetVarint64(&data.epoch));
    GVEX_RETURN_NOT_OK(meta.GetVarint64(&data.parent_epoch));
    GVEX_RETURN_NOT_OK(meta.GetCount(bytes.size(), &num_views));
    if (!meta.done()) {
      return Status::InvalidArgument("trailing bytes in delta meta");
    }
  }
  // A delta that does not advance past its parent persists nothing its
  // parent doesn't — structurally invalid, reject before use.
  if (data.epoch <= data.parent_epoch) {
    return Status::InvalidArgument("delta epoch must exceed its parent");
  }

  for (uint64_t i = 0; i < num_views; ++i) {
    GVEX_RETURN_NOT_OK(in.GetFramedRecord(&payload));
    if (payload.empty() || static_cast<uint8_t>(payload[0]) != kViewTag) {
      return Status::InvalidArgument("expected a delta view record");
    }
    ByteReader rec(payload.data() + 1, payload.size() - 1);
    ExplanationView view;
    GVEX_RETURN_NOT_OK(DecodeView(&rec, &view));
    if (!rec.done()) {
      return Status::InvalidArgument("trailing bytes in view record");
    }
    const int label = view.label;
    if (!data.views.emplace(label, std::move(view)).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate delta view for label %d", label));
    }
  }

  GVEX_RETURN_NOT_OK(in.GetFramedRecord(&payload));
  if (payload.empty() || static_cast<uint8_t>(payload[0]) != kFooterTag) {
    return Status::InvalidArgument("delta missing footer record");
  }
  {
    ByteReader rec(payload.data() + 1, payload.size() - 1);
    uint64_t views_again = 0;
    GVEX_RETURN_NOT_OK(rec.GetVarint64(&views_again));
    if (views_again != num_views || !rec.done()) {
      return Status::InvalidArgument("delta footer mismatch");
    }
  }
  if (!in.done()) {
    return Status::InvalidArgument("trailing bytes after delta footer");
  }
  return data;
}

Status SaveDelta(const std::string& path, const DeltaData& data) {
  return AtomicWriteFile(path, SerializeDelta(data));
}

Result<DeltaData> LoadDelta(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return Status::IOError("cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ParseDelta(ss.str());
}

Result<SnapshotData> LoadSnapshot(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return Status::IOError("cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ParseSnapshot(ss.str());
}

Result<std::vector<uint64_t>> ListSnapshotEpochs(const std::string& dir) {
  return ListEpochFiles(dir, kSnapshotPrefix, kSnapshotSuffix);
}

Result<std::vector<uint64_t>> ListDeltaEpochs(const std::string& dir) {
  return ListEpochFiles(dir, kDeltaPrefix, kDeltaSuffix);
}

Result<int> PruneDeltas(const std::string& dir, uint64_t keep_epoch) {
  auto epochs = ListDeltaEpochs(dir);
  if (!epochs.ok()) return epochs.status();
  int removed = 0;
  for (uint64_t epoch : epochs.value()) {
    if (epoch > keep_epoch) continue;
    const std::string path = dir + "/" + DeltaFileName(epoch);
    if (std::remove(path.c_str()) == 0) ++removed;
  }
  return removed;
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) {
    // The new directory's own entry must be durable before anything
    // fsynced INSIDE it can be considered durable.
    return SyncParentDir(dir);
  }
  if (errno == EEXIST) return Status::OK();
  return Status::IOError(StrFormat("cannot create directory %s: %s",
                                   dir.c_str(), std::strerror(errno)));
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(StrFormat("cannot open directory %s for fsync: %s",
                                     dir.c_str(), std::strerror(errno)));
  }
  const bool synced = ::fsync(fd) == 0;
  const int sync_errno = errno;
  ::close(fd);
  if (!synced) {
    return Status::IOError(StrFormat("fsync failed for directory %s: %s",
                                     dir.c_str(),
                                     std::strerror(sync_errno)));
  }
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return SyncDir(".");
  if (slash == 0) return SyncDir("/");
  return SyncDir(path.substr(0, slash));
}

Result<int> PruneSnapshots(const std::string& dir, uint64_t keep_epoch) {
  auto epochs = ListSnapshotEpochs(dir);
  if (!epochs.ok()) return epochs.status();
  int removed = 0;
  for (uint64_t epoch : epochs.value()) {
    if (epoch >= keep_epoch) continue;
    const std::string path = dir + "/" + SnapshotFileName(epoch);
    if (std::remove(path.c_str()) == 0) ++removed;
  }
  return removed;
}

}  // namespace gvex
