#include "store/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "store/codec.h"
#include "store/snapshot.h"  // SyncParentDir
#include "util/string_util.h"

namespace gvex {

namespace {

constexpr uint8_t kAdmitTag = 1;

// WAL instruments, registered once (appends then never touch the registry
// lock). Append covers the whole call — framing, fwrite, and any fsync its
// sync_every policy triggered — so batched-sync configurations show their
// bimodal latency.
struct WalInstruments {
  obs::Histogram* append_seconds;
  obs::Histogram* fsync_seconds;
  obs::Counter* appended_bytes;
};

const WalInstruments& WalObs() {
  static const WalInstruments* instruments = [] {
    auto* wi = new WalInstruments();
    obs::Registry& m = obs::Metrics();
    wi->append_seconds = m.GetHistogram(
        "gvex_wal_append_seconds",
        "WAL append duration, including any fsync the batching policy "
        "triggered",
        obs::Unit::kNanoseconds);
    wi->fsync_seconds =
        m.GetHistogram("gvex_wal_fsync_seconds", "WAL flush+fsync duration",
                       obs::Unit::kNanoseconds);
    wi->appended_bytes = m.GetCounter(
        "gvex_wal_appended_bytes_total",
        "Bytes appended to the WAL (successful appends only)");
    return wi;
  }();
  return *instruments;
}

double WalSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload(1, static_cast<char>(kAdmitTag));
  PutVarint64(&payload, record.epoch);
  PutVarint64(&payload, record.views.size());
  for (const ExplanationView& v : record.views) EncodeView(v, &payload);
  return payload;
}

Status DecodeWalRecord(const std::string& payload, WalRecord* record) {
  if (payload.empty() || static_cast<uint8_t>(payload[0]) != kAdmitTag) {
    return Status::InvalidArgument("unknown WAL record tag");
  }
  ByteReader in(payload.data() + 1, payload.size() - 1);
  WalRecord out;
  GVEX_RETURN_NOT_OK(in.GetVarint64(&out.epoch));
  uint64_t num_views = 0;
  GVEX_RETURN_NOT_OK(in.GetCount(in.remaining(), &num_views));
  out.views.reserve(static_cast<size_t>(num_views));
  for (uint64_t i = 0; i < num_views; ++i) {
    ExplanationView v;
    GVEX_RETURN_NOT_OK(DecodeView(&in, &v));
    out.views.push_back(std::move(v));
  }
  if (!in.done()) {
    return Status::InvalidArgument("trailing bytes in WAL record");
  }
  *record = std::move(out);
  return Status::OK();
}

}  // namespace

std::string WalFileName() { return "wal.gvxw"; }

Result<WalReplay> ReplayWal(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return Status::NotFound("no WAL at " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string bytes = ss.str();

  if (bytes.size() < kStoreHeaderBytes) {
    // A crash between WAL creation and the header reaching disk leaves a
    // sub-header file that provably holds no records. Treat it as an
    // empty log with a torn tail (valid_bytes 0 makes the writer rewrite
    // a fresh header) instead of bricking recovery.
    WalReplay replay;
    replay.valid_bytes = 0;
    replay.torn_tail = true;
    replay.tail_error = "file shorter than the store header";
    return replay;
  }
  ByteReader in(bytes);
  GVEX_RETURN_NOT_OK(in.GetStoreHeader(StoreFileKind::kWal));

  WalReplay replay;
  replay.valid_bytes = kStoreHeaderBytes;
  while (!in.done()) {
    std::string payload;
    Status frame = in.GetFramedRecord(&payload);
    if (!frame.ok()) {
      // Truncated or checksum-broken tail: keep the valid prefix.
      replay.torn_tail = true;
      replay.tail_error = frame.message();
      break;
    }
    WalRecord record;
    Status parsed = DecodeWalRecord(payload, &record);
    if (!parsed.ok()) {
      // The frame was intact but the payload is not ours — treat like a
      // torn tail: nothing after it can be trusted to be in order.
      replay.torn_tail = true;
      replay.tail_error = parsed.message();
      break;
    }
    replay.records.push_back(std::move(record));
    replay.valid_bytes = bytes.size() - in.remaining();
  }
  return replay;
}

Result<WalStart> ReadWalStart(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return Status::NotFound("no WAL at " + path);
  // The first record is bounded in practice but not in principle, so read
  // progressively larger prefixes until one frame parses (or the file ends).
  std::string bytes;
  for (size_t budget = 1 << 16;; budget *= 4) {
    f.clear();
    f.seekg(0);
    bytes.resize(budget);
    f.read(&bytes[0], static_cast<std::streamsize>(budget));
    bytes.resize(static_cast<size_t>(f.gcount()));
    const bool whole_file = bytes.size() < budget;

    WalStart start;
    if (bytes.size() < kStoreHeaderBytes) return start;  // sub-header file
    ByteReader in(bytes);
    GVEX_RETURN_NOT_OK(in.GetStoreHeader(StoreFileKind::kWal));
    std::string payload;
    if (in.GetFramedRecord(&payload).ok()) {
      WalRecord record;
      if (!DecodeWalRecord(payload, &record).ok()) return start;
      start.has_records = true;
      start.first_epoch = record.epoch;
      return start;
    }
    // Frame truncated: with the whole file in hand that is a torn first
    // record (no records); otherwise retry with a larger prefix.
    if (whole_file) return start;
  }
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fflush(file_);
    ::fsync(::fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WalWriter::Open(const std::string& path, uint64_t truncate_to) {
  Close();
  failed_ = false;
  unsynced_ = 0;
  bytes_ = 0;  // never leave a stale size behind an error return below
  path_ = path;

  struct stat st;
  const bool exists = ::stat(path.c_str(), &st) == 0;
  const uint64_t size = exists ? static_cast<uint64_t>(st.st_size) : 0;

  if (!exists || size < kStoreHeaderBytes || truncate_to < kStoreHeaderBytes) {
    // Fresh log (also the path for an unusably short file).
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) {
      return Status::IOError(StrFormat("cannot create WAL %s: %s",
                                       path.c_str(), std::strerror(errno)));
    }
    // Any failure below must leave the writer fully CLOSED (not half-open
    // with a stale size): Append guards only on file_/failed_, and a
    // half-open writer would accept records at a bogus offset.
    const auto fail_closed = [this](Status st) {
      std::fclose(file_);
      file_ = nullptr;
      bytes_ = 0;
      return st;
    };
    std::string header;
    PutStoreHeader(&header, StoreFileKind::kWal);
    if (std::fwrite(header.data(), 1, header.size(), file_) !=
        header.size()) {
      return fail_closed(
          Status::IOError("cannot write WAL header to " + path));
    }
    // An unchecked header fsync would let Open succeed while the header
    // may never reach disk — recovery would then read a torn header and
    // silently treat every acknowledged append as an empty log.
    if (std::fflush(file_) != 0) {
      return fail_closed(Status::IOError("WAL flush failed for " + path));
    }
    if (::fsync(::fileno(file_)) != 0) {
      return fail_closed(
          Status::IOError(StrFormat("WAL fsync failed for %s: %s",
                                    path.c_str(), std::strerror(errno))));
    }
    bytes_ = header.size();
    if (!exists) {
      // A brand-new file is a directory-entry mutation; without a
      // directory fsync, power loss can leave acknowledged (file-fsynced)
      // appends in a file that no longer has a name.
      Status synced = SyncParentDir(path);
      if (!synced.ok()) return fail_closed(std::move(synced));
    }
    return Status::OK();
  }

  if (truncate_to < size) {
    // Drop a torn tail before appending resumes.
    if (::truncate(path.c_str(), static_cast<off_t>(truncate_to)) != 0) {
      return Status::IOError(StrFormat("cannot truncate WAL %s: %s",
                                       path.c_str(), std::strerror(errno)));
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError(StrFormat("cannot open WAL %s: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  bytes_ = truncate_to < size ? truncate_to : size;
  return Status::OK();
}

void WalWriter::RestoreTo(uint64_t offset) {
  // A failed write may have left a partial frame in the file (or in the
  // stdio buffer, flushed who-knows-how-far). Discard everything past the
  // last good offset so a later successful append is never stranded
  // behind torn bytes that replay would stop at.
  if (file_ != nullptr) {
    std::fclose(file_);  // drops any buffered partial frame
    file_ = nullptr;
  }
  if (::truncate(path_.c_str(), static_cast<off_t>(offset)) != 0) {
    failed_ = true;
    return;
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    failed_ = true;
    return;
  }
  bytes_ = offset;
  unsynced_ = 0;
}

Status WalWriter::Append(const WalRecord& record) {
  if (failed_) {
    return Status::FailedPrecondition(
        "WAL writer failed and could not roll back; reopen it");
  }
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL is not open");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t start = bytes_;
  std::string framed;
  PutFramedRecord(&framed, EncodeWalRecord(record));
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    RestoreTo(start);
    return Status::IOError("WAL append failed for " + path_);
  }
  bytes_ += framed.size();
  ++unsynced_;
  if (unsynced_ >= sync_every_) {
    Status synced = Sync();
    if (!synced.ok()) {
      RestoreTo(start);
      return synced;
    }
    WalObs().append_seconds->ObserveSeconds(WalSecondsSince(t0));
    WalObs().appended_bytes->Add(framed.size());
    return synced;
  }
  // Batched: push to the OS now (a process crash loses nothing), defer the
  // fsync (a power failure may lose the batch).
  if (std::fflush(file_) != 0) {
    RestoreTo(start);
    return Status::IOError("WAL flush failed for " + path_);
  }
  WalObs().append_seconds->ObserveSeconds(WalSecondsSince(t0));
  WalObs().appended_bytes->Add(framed.size());
  return Status::OK();
}

Status WalWriter::Sync() {
  if (failed_) {
    return Status::FailedPrecondition(
        "WAL writer failed and could not roll back; reopen it");
  }
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL is not open");
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (std::fflush(file_) != 0) {
    return Status::IOError("WAL flush failed for " + path_);
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError(StrFormat("WAL fsync failed for %s: %s",
                                     path_.c_str(), std::strerror(errno)));
  }
  WalObs().fsync_seconds->ObserveSeconds(WalSecondsSince(t0));
  unsynced_ = 0;
  return Status::OK();
}

Status WalWriter::Reset() {
  // Deliberately usable with the file closed (and with failed_ latched):
  // callers only Reset when every logged record is covered by a snapshot,
  // so rewriting a fresh header is always safe — and it is the recovery
  // path for a writer that a failed rollback or reset left wedged.
  if (path_.empty()) {
    return Status::FailedPrecondition("WAL was never opened");
  }
  const std::string path = path_;
  const int sync_every = sync_every_;
  Close();
  Status st = Open(path, 0);  // 0 forces the fresh-header path
  set_sync_every(sync_every);
  return st;
}

}  // namespace gvex
