#include "store/recovery.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace gvex {

Result<RecoveryPlan> PlanRecovery(const std::string& dir) {
  RecoveryPlan plan;
  GVEX_ASSIGN_OR_RETURN(plan.epochs, ListSnapshotEpochs(dir));
  GVEX_ASSIGN_OR_RETURN(plan.delta_epochs, ListDeltaEpochs(dir));

  // Newest base snapshot that validates wins; older ones are fallbacks
  // against a corrupted latest file (atomic writes make that unlikely,
  // torn disks happen anyway). An older base can still re-attach deltas
  // below — chains are resolved per-base, so the fallback walks THROUGH
  // any deltas recorded against the older base's chain.
  std::string last_error;
  for (auto it = plan.epochs.rbegin(); it != plan.epochs.rend(); ++it) {
    auto loaded = LoadSnapshot(dir + "/" + SnapshotFileName(*it));
    if (loaded.ok()) {
      plan.snapshot = std::move(loaded).value();
      plan.have_snapshot = true;
      plan.base_epoch = *it;
      break;
    }
    last_error = loaded.status().ToString();
  }
  if (!plan.have_snapshot && !plan.epochs.empty()) {
    return Status::IOError(
        StrFormat("no snapshot in %s validates (last error: %s)",
                  dir.c_str(), last_error.c_str()));
  }

  // Fold the delta chain onto the base, ascending: a delta attaches iff
  // its parent epoch is EXACTLY the chain tip so far (deltas record the
  // previously persisted image they were computed against). Deltas at or
  // below the tip are stale leftovers of a superseded chain and are
  // skipped; a delta whose parent is ahead of the tip cannot attach (the
  // image in between never became durable or is gone) and stops the walk
  // — the newest-acknowledged-epoch check below then decides whether the
  // WAL still reaches that state or recovery must fail-stop. Applying any
  // delta invalidates the base's postings: the view set changed, so the
  // index must be rebuilt over the merged views.
  plan.postings_valid = plan.have_snapshot;
  if (plan.have_snapshot) {
    for (uint64_t delta_epoch : plan.delta_epochs) {
      if (delta_epoch <= plan.snapshot.epoch) continue;  // stale
      auto delta = LoadDelta(dir + "/" + DeltaFileName(delta_epoch));
      if (!delta.ok()) break;  // broken chain: nothing later can attach
      if (delta.value().parent_epoch < plan.snapshot.epoch) {
        continue;  // superseded branch — cannot attach, may be prunable
      }
      if (delta.value().parent_epoch > plan.snapshot.epoch) {
        break;  // gap: its parent image is unreachable
      }
      for (auto& [label, view] : delta.value().views) {
        plan.snapshot.views[label] = std::move(view);
      }
      plan.snapshot.epoch = delta_epoch;
      plan.chain.push_back(delta_epoch);
      plan.postings_valid = false;
    }
  }
  if (!plan.chain.empty()) plan.snapshot.postings.clear();

  auto replayed = ReplayWal(dir + "/" + WalFileName());
  if (replayed.ok()) {
    plan.replay = std::move(replayed).value();
    plan.have_wal = true;
  } else if (!replayed.status().IsNotFound()) {
    return replayed.status();
  }

  // Admissions bump the epoch by exactly one, so a replayable log is
  // contiguous from the chain tip. A gap proves acknowledged state is
  // unreachable — e.g. Compact wrote snapshot-N and reset the WAL,
  // snapshot-N later corrupted, and recovery fell back to an older chain.
  // Replaying over the gap would silently drop the admissions that only
  // snapshot-N held (and the final-epoch check below cannot see it,
  // because replay still ends at the newest epoch); fail-stop.
  plan.final_epoch = plan.snapshot.epoch;
  for (const WalRecord& record : plan.replay.records) {
    if (record.epoch <= plan.final_epoch) continue;  // folded into the chain
    if (record.epoch != plan.final_epoch + 1) {
      return Status::IOError(StrFormat(
          "WAL record for epoch %llu cannot attach to recovered epoch %llu "
          "— the admissions in between were acknowledged but no snapshot "
          "chain or WAL record reaches them; restore a snapshot covering "
          "epoch %llu, or delete the WAL to accept losing the logged "
          "admissions",
          static_cast<unsigned long long>(record.epoch),
          static_cast<unsigned long long>(plan.final_epoch),
          static_cast<unsigned long long>(record.epoch - 1)));
    }
    plan.final_epoch = record.epoch;
  }

  // Fail-stop on provable data loss: a snapshot or delta FILE for a newer
  // epoch exists (that state was once acknowledged) but neither a valid
  // chain nor the WAL can reach it — e.g. the newest image is corrupt and
  // Compact already reset the WAL. Serving the older state silently would
  // drop acknowledged admissions; make the operator decide (delete the
  // corrupt file to accept the rollback).
  uint64_t newest_on_disk = plan.epochs.empty() ? 0 : plan.epochs.back();
  if (!plan.delta_epochs.empty()) {
    newest_on_disk = std::max(newest_on_disk, plan.delta_epochs.back());
  }
  if (plan.final_epoch < newest_on_disk) {
    const bool newest_is_delta =
        !plan.delta_epochs.empty() && plan.delta_epochs.back() == newest_on_disk;
    const std::string newest_name =
        newest_is_delta ? DeltaFileName(newest_on_disk)
                        : SnapshotFileName(newest_on_disk);
    return Status::IOError(StrFormat(
        "recovery reaches epoch %llu but %s/%s exists and does not attach — "
        "acknowledged state would be lost; delete the corrupt %s to accept "
        "rolling back",
        static_cast<unsigned long long>(plan.final_epoch), dir.c_str(),
        newest_name.c_str(), newest_is_delta ? "delta" : "snapshot"));
  }
  return plan;
}

Result<StoreVerifyReport> VerifyStore(const std::string& dir) {
  StoreVerifyReport report;
  // Writer probe: non-blocking SHARED flock on an EXISTING LOCK file only.
  // O_CREAT here would fabricate store state in a directory verify must not
  // mutate; a missing LOCK simply means no writer ever opened the store.
  const std::string lock_path = dir + "/LOCK";
  const int fd = ::open(lock_path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    if (::flock(fd, LOCK_SH | LOCK_NB) == 0) {
      ::flock(fd, LOCK_UN);  // released before any I/O below
    } else {
      report.writer_active = true;
    }
    ::close(fd);
  }
  GVEX_ASSIGN_OR_RETURN(report.plan, PlanRecovery(dir));
  return report;
}

}  // namespace gvex
