#include "store/recovery.h"

#include <utility>

#include "util/string_util.h"

namespace gvex {

Result<RecoveryPlan> PlanRecovery(const std::string& dir) {
  RecoveryPlan plan;
  GVEX_ASSIGN_OR_RETURN(plan.epochs, ListSnapshotEpochs(dir));

  // Newest snapshot that validates wins; older ones are fallbacks against
  // a corrupted latest file (atomic writes make that unlikely, torn disks
  // happen anyway).
  std::string last_error;
  for (auto it = plan.epochs.rbegin(); it != plan.epochs.rend(); ++it) {
    auto loaded = LoadSnapshot(dir + "/" + SnapshotFileName(*it));
    if (loaded.ok()) {
      plan.snapshot = std::move(loaded).value();
      plan.have_snapshot = true;
      break;
    }
    last_error = loaded.status().ToString();
  }
  if (!plan.have_snapshot && !plan.epochs.empty()) {
    return Status::IOError(
        StrFormat("no snapshot in %s validates (last error: %s)",
                  dir.c_str(), last_error.c_str()));
  }

  auto replayed = ReplayWal(dir + "/" + WalFileName());
  if (replayed.ok()) {
    plan.replay = std::move(replayed).value();
    plan.have_wal = true;
  } else if (!replayed.status().IsNotFound()) {
    return replayed.status();
  }

  // Admissions bump the epoch by exactly one, so a replayable log is
  // contiguous from the loaded snapshot. A gap proves acknowledged state
  // is unreachable — e.g. Compact wrote snapshot-N and reset the WAL,
  // snapshot-N later corrupted, and recovery fell back to an older
  // snapshot. Replaying over the gap would silently drop the admissions
  // that only snapshot-N held (and the final-epoch check below cannot see
  // it, because replay still ends at the newest epoch); fail-stop.
  plan.final_epoch = plan.snapshot.epoch;
  for (const WalRecord& record : plan.replay.records) {
    if (record.epoch <= plan.final_epoch) continue;  // folded into snapshot
    if (record.epoch != plan.final_epoch + 1) {
      return Status::IOError(StrFormat(
          "WAL record for epoch %llu cannot attach to recovered epoch %llu "
          "— the admissions in between were acknowledged but no snapshot "
          "or WAL record reaches them; restore a snapshot covering epoch "
          "%llu, or delete the WAL to accept losing the logged admissions",
          static_cast<unsigned long long>(record.epoch),
          static_cast<unsigned long long>(plan.final_epoch),
          static_cast<unsigned long long>(record.epoch - 1)));
    }
    plan.final_epoch = record.epoch;
  }

  // Fail-stop on provable data loss: a snapshot FILE for a newer epoch
  // exists (that state was once acknowledged) but neither a valid
  // snapshot nor the WAL can reach it — e.g. the newest snapshot is
  // corrupt and Compact already reset the WAL. Serving the older state
  // silently would drop acknowledged admissions; make the operator decide
  // (delete the corrupt file to accept the rollback).
  if (!plan.epochs.empty() && plan.final_epoch < plan.epochs.back()) {
    return Status::IOError(StrFormat(
        "recovery reaches epoch %llu but %s/%s exists and does not load — "
        "acknowledged state would be lost; delete the corrupt snapshot to "
        "accept rolling back",
        static_cast<unsigned long long>(plan.final_epoch), dir.c_str(),
        SnapshotFileName(plan.epochs.back()).c_str()));
  }
  return plan;
}

}  // namespace gvex
