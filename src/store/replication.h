// Primary -> standby WAL-shipping replication, store layer.
//
// The WAL (store/wal.h) is append-only and epoch-contiguous, which makes it
// a replication log for free: a standby that mirrors the primary's store
// directory byte-for-byte — snapshot/delta files plus a prefix of the live
// WAL — and feeds the mirrored state through the SAME PlanRecovery verdict
// the primary would recover with (store/recovery.h) is always promotable to
// exactly the state a crash-restarted primary would reach.
//
// This header holds the shipping-side pieces:
//   * ReplManifest — what the primary's directory currently holds: every
//     snapshot/delta file with its size, the WAL's size and generation
//     identity (first record epoch; see ReadWalStart), and the primary's
//     published epoch for lag accounting.
//   * ReplicationEndpoint — the transport abstraction the applier pulls
//     through: manifest / ranged fetch / prefix CRC. Implementations:
//     LocalEndpoint (in-process, for tests and same-host setups) and
//     net/repl_client.h (TCP, speaking the `replicate` verb).
//   * ReplicationSource — serves those three operations over a directory.
//     Pure reads; safe to run against a LIVE primary directory (reads may
//     observe a torn WAL tail mid-append — the applier handles that by
//     truncating to the valid prefix and re-requesting, aka a re-ship).
//
// The applier side (sync state machine, fail-stop rules, promote) lives in
// serve/replica_applier.h because it drives a ViewService.
//
// Fail-stop doctrine (enforced by the applier, documented here because the
// manifest's fields exist to make these checks possible):
//   * Same-named snapshot/delta files with different bytes can only come
//     from two different histories — FAIL-STOP, never overwrite.
//   * Equal WAL first-record epochs mean the shorter log must be a
//     byte-identical prefix of the longer — a prefix-CRC mismatch is
//     divergence, FAIL-STOP. Different first epochs are a benign generation
//     change (the primary compacted): resync, reset the local log.
//   * A primary whose recovery plan ends BELOW the replica's current epoch
//     is behind acknowledged state — FAIL-STOP (never silently regress).

#ifndef GVEX_STORE_REPLICATION_H_
#define GVEX_STORE_REPLICATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace gvex {

/// One shippable file of the primary's directory (snapshot-*.gvxs or
/// delta-*.gvxd — never the WAL, which has its own manifest fields, and
/// never LOCK or foreign files).
struct ReplFileInfo {
  std::string name;    ///< bare file name, no directory components
  uint64_t bytes = 0;  ///< size at manifest time (immutable once renamed)
};

/// A point-in-time inventory of the primary's store directory.
struct ReplManifest {
  /// The primary's published epoch (0 when the source has no epoch
  /// provider) — drives the replica's lag-in-epochs gauge.
  uint64_t epoch = 0;
  /// wal.gvxw size in bytes (0 when the file does not exist).
  uint64_t wal_bytes = 0;
  /// Generation identity of the WAL (see WalStart in store/wal.h).
  bool wal_has_records = false;
  uint64_t wal_first_epoch = 0;
  /// Snapshot + delta files, name-sorted.
  std::vector<ReplFileInfo> files;
};

/// The transport the applier pulls replication state through. All three
/// operations are pure reads on the primary, so they are also safe to serve
/// FROM a replica (chained standbys).
class ReplicationEndpoint {
 public:
  virtual ~ReplicationEndpoint() = default;
  virtual Result<ReplManifest> Manifest() = 0;
  /// Up to `max_len` bytes of `name` starting at `offset`. Short reads are
  /// normal (EOF, or the transport's chunk cap); an empty string means the
  /// file holds nothing at or past `offset`.
  virtual Result<std::string> Fetch(const std::string& name, uint64_t offset,
                                    uint64_t max_len) = 0;
  /// CRC32 over the first `bytes` bytes of `name`. InvalidArgument when the
  /// file is shorter than `bytes`.
  virtual Result<uint32_t> PrefixCrc(const std::string& name,
                                     uint64_t bytes) = 0;
};

/// Serves manifest / fetch / prefix-CRC over one store directory.
class ReplicationSource {
 public:
  /// `epoch_provider` reports the primary's published epoch for the
  /// manifest (may be null — the manifest then carries epoch 0).
  explicit ReplicationSource(std::string dir,
                             std::function<uint64_t()> epoch_provider = {});

  Result<ReplManifest> Manifest() const;
  Result<std::string> Fetch(const std::string& name, uint64_t offset,
                            uint64_t max_len) const;
  Result<uint32_t> PrefixCrc(const std::string& name, uint64_t bytes) const;

  /// True for the bare names replication is allowed to touch: wal.gvxw,
  /// snapshot-*.gvxs, delta-*.gvxd. Anything else (paths with separators,
  /// LOCK, tmp files) is rejected — the replicate verb is reachable over
  /// the network and must not become a file-read oracle.
  static bool ValidFileName(const std::string& name);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::function<uint64_t()> epoch_provider_;
};

/// In-process endpoint over a ReplicationSource — what tests and same-host
/// replicas use (the TCP endpoint lives in net/repl_client.h).
class LocalEndpoint : public ReplicationEndpoint {
 public:
  explicit LocalEndpoint(std::string dir,
                         std::function<uint64_t()> epoch_provider = {})
      : source_(std::move(dir), std::move(epoch_provider)) {}

  Result<ReplManifest> Manifest() override { return source_.Manifest(); }
  Result<std::string> Fetch(const std::string& name, uint64_t offset,
                            uint64_t max_len) override {
    return source_.Fetch(name, offset, max_len);
  }
  Result<uint32_t> PrefixCrc(const std::string& name,
                             uint64_t bytes) override {
    return source_.PrefixCrc(name, bytes);
  }

 private:
  ReplicationSource source_;
};

}  // namespace gvex

#endif  // GVEX_STORE_REPLICATION_H_
