#include "store/codec.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "explain/view_io.h"
#include "util/string_util.h"

namespace gvex {

namespace {

// Varints longer than this encode values past 2^64 — reject.
constexpr int kMaxVarintBytes = 10;

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(
      StrFormat("truncated input while reading %s", what));
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const uint32_t* table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  dst->append(buf, 8);
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80u) {
    dst->push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutZigzag64(std::string* dst, int64_t v) { PutVarint64(dst, Zigzag(v)); }

void PutDoubleBits(std::string* dst, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

void PutFloatBits(std::string* dst, float v) {
  uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "float must be 32-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed32(dst, bits);
}

void PutLengthPrefixed(std::string* dst, const std::string& s) {
  PutVarint64(dst, s.size());
  dst->append(s);
}

void PutStoreHeader(std::string* dst, StoreFileKind kind) {
  PutFixed32(dst, kStoreMagic);
  PutFixed32(dst, kStoreFormatVersion);
  PutFixed32(dst, static_cast<uint32_t>(kind));
}

void PutFramedRecord(std::string* dst, const std::string& payload) {
  PutVarint64(dst, payload.size());
  dst->append(payload);
  PutFixed32(dst, Crc32(payload));
}

Status ByteReader::GetFixed32(uint32_t* v) {
  if (remaining() < 4) return Truncated("fixed32");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(p_[i]) << (8 * i);
  p_ += 4;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetFixed64(uint64_t* v) {
  if (remaining() < 8) return Truncated("fixed64");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(p_[i]) << (8 * i);
  p_ += 8;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetVarint64(uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (p_ + i >= end_) return Truncated("varint");
    const uint8_t byte = p_[i];
    // The 10th byte may only carry the final bit of a 64-bit value.
    if (i == kMaxVarintBytes - 1 && byte > 1) {
      return Status::InvalidArgument("varint overflows 64 bits");
    }
    out |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    shift += 7;
    if ((byte & 0x80u) == 0) {
      p_ += i + 1;
      *v = out;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("varint longer than 10 bytes");
}

Status ByteReader::GetZigzag64(int64_t* v) {
  uint64_t raw = 0;
  GVEX_RETURN_NOT_OK(GetVarint64(&raw));
  *v = Unzigzag(raw);
  return Status::OK();
}

Status ByteReader::GetDoubleBits(double* v) {
  uint64_t bits = 0;
  GVEX_RETURN_NOT_OK(GetFixed64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::GetFloatBits(float* v) {
  uint32_t bits = 0;
  GVEX_RETURN_NOT_OK(GetFixed32(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::GetLengthPrefixed(std::string* s) {
  uint64_t len = 0;
  GVEX_RETURN_NOT_OK(GetVarint64(&len));
  if (len > remaining()) return Truncated("length-prefixed bytes");
  s->assign(reinterpret_cast<const char*>(p_), static_cast<size_t>(len));
  p_ += len;
  return Status::OK();
}

Status ByteReader::GetCount(uint64_t limit, uint64_t* v) {
  uint64_t raw = 0;
  GVEX_RETURN_NOT_OK(GetVarint64(&raw));
  if (raw > limit) {
    return Status::InvalidArgument(
        StrFormat("count %llu exceeds limit %llu",
                  static_cast<unsigned long long>(raw),
                  static_cast<unsigned long long>(limit)));
  }
  *v = raw;
  return Status::OK();
}

Status ByteReader::GetStoreHeader(StoreFileKind expected) {
  uint32_t magic = 0, version = 0, kind = 0;
  if (!GetFixed32(&magic).ok() || !GetFixed32(&version).ok() ||
      !GetFixed32(&kind).ok()) {
    return Status::InvalidArgument("file too short for a store header");
  }
  if (magic != kStoreMagic) {
    return Status::InvalidArgument("bad magic: not a gvex store file");
  }
  if (version != kStoreFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported store format version %u (expected %u)",
                  version, kStoreFormatVersion));
  }
  if (kind != static_cast<uint32_t>(expected)) {
    return Status::InvalidArgument(
        StrFormat("store file kind %u is not the expected kind %u", kind,
                  static_cast<uint32_t>(expected)));
  }
  return Status::OK();
}

Status ByteReader::GetFramedRecord(std::string* payload) {
  if (done()) return Status::NotFound("end of input");
  uint64_t len = 0;
  GVEX_RETURN_NOT_OK(GetVarint64(&len));
  if (len > remaining() || remaining() - len < 4) {
    return Truncated("framed record");
  }
  std::string body(reinterpret_cast<const char*>(p_),
                   static_cast<size_t>(len));
  p_ += len;
  uint32_t want = 0;
  GVEX_RETURN_NOT_OK(GetFixed32(&want));
  if (Crc32(body) != want) {
    return Status::InvalidArgument("record checksum mismatch");
  }
  *payload = std::move(body);
  return Status::OK();
}

// --- Graph ---------------------------------------------------------------
// flags varint (bit0 directed, bit1 has_features), num_nodes, node types
// (zigzag), [feature_dim + num_nodes*dim float bits], num_edges, edges as
// (u, v, type) with endpoints varint and type zigzag. Edge order is the
// insertion order Graph::edges() preserves, so re-encoding a decoded graph
// is byte-identical.

void EncodeGraph(const Graph& g, std::string* dst) {
  uint64_t flags = 0;
  if (g.directed()) flags |= 1u;
  if (g.has_features()) flags |= 2u;
  PutVarint64(dst, flags);
  PutVarint64(dst, static_cast<uint64_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    PutZigzag64(dst, g.node_type(v));
  }
  if (g.has_features()) {
    PutVarint64(dst, static_cast<uint64_t>(g.feature_dim()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (int j = 0; j < g.feature_dim(); ++j) {
        PutFloatBits(dst, g.features().at(v, j));
      }
    }
  }
  PutVarint64(dst, static_cast<uint64_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    PutVarint64(dst, static_cast<uint64_t>(e.u));
    PutVarint64(dst, static_cast<uint64_t>(e.v));
    PutZigzag64(dst, e.edge_type);
  }
}

Status DecodeGraph(ByteReader* in, Graph* g) {
  uint64_t flags = 0, num_nodes = 0;
  GVEX_RETURN_NOT_OK(in->GetVarint64(&flags));
  if (flags > 3) {
    return Status::InvalidArgument("unknown graph flag bits");
  }
  // A node costs at least one encoded byte, so `remaining` bounds every
  // count — hostile lengths are rejected before any allocation. Node ids
  // are ints, so the count must also fit one.
  GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &num_nodes));
  if (num_nodes > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return Status::InvalidArgument("graph node count exceeds INT_MAX");
  }
  Graph out((flags & 1u) != 0);
  for (uint64_t v = 0; v < num_nodes; ++v) {
    int64_t type = 0;
    GVEX_RETURN_NOT_OK(in->GetZigzag64(&type));
    out.AddNode(static_cast<int>(type));
  }
  if ((flags & 2u) != 0) {
    uint64_t dim = 0;
    GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &dim));
    // Division-based bound: the multiplied form num_nodes * dim * 4 can
    // wrap in uint64 for a crafted multi-GB file, sliding hostile counts
    // past the guard and into the int casts below.
    if (dim > static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
        (dim != 0 && num_nodes > in->remaining() / (dim * 4))) {
      return Truncated("graph feature matrix");
    }
    Matrix x(static_cast<int>(num_nodes), static_cast<int>(dim));
    for (uint64_t v = 0; v < num_nodes; ++v) {
      for (uint64_t j = 0; j < dim; ++j) {
        GVEX_RETURN_NOT_OK(in->GetFloatBits(
            &x.at(static_cast<int>(v), static_cast<int>(j))));
      }
    }
    GVEX_RETURN_NOT_OK(out.SetFeatures(std::move(x)));
  }
  uint64_t num_edges = 0;
  GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &num_edges));
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint64_t u = 0, v = 0;
    int64_t type = 0;
    GVEX_RETURN_NOT_OK(in->GetVarint64(&u));
    GVEX_RETURN_NOT_OK(in->GetVarint64(&v));
    GVEX_RETURN_NOT_OK(in->GetZigzag64(&type));
    if (u >= num_nodes || v >= num_nodes) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    GVEX_RETURN_NOT_OK(out.AddEdge(static_cast<NodeId>(u),
                                   static_cast<NodeId>(v),
                                   static_cast<int>(type)));
  }
  *g = std::move(out);
  return Status::OK();
}

// --- Pattern -------------------------------------------------------------
// Just the structure graph; Pattern::Create re-derives the canonical code
// deterministically and re-enforces the connectivity invariant.

void EncodePattern(const Pattern& p, std::string* dst) {
  EncodeGraph(p.graph(), dst);
}

Status DecodePattern(ByteReader* in, Pattern* p) {
  Graph g;
  GVEX_RETURN_NOT_OK(DecodeGraph(in, &g));
  auto created = Pattern::Create(std::move(g));
  if (!created.ok()) return created.status();
  *p = std::move(created).value();
  return Status::OK();
}

// --- ExplanationView -----------------------------------------------------
// label, explainability bits, patterns, subgraphs; each subgraph carries
// graph_index, verification flags, its explainability term, the selected
// node ids, and the induced subgraph.

void EncodeView(const ExplanationView& v, std::string* dst) {
  PutZigzag64(dst, v.label);
  PutDoubleBits(dst, v.explainability);
  PutVarint64(dst, v.patterns.size());
  for (const Pattern& p : v.patterns) EncodePattern(p, dst);
  PutVarint64(dst, v.subgraphs.size());
  for (const ExplanationSubgraph& s : v.subgraphs) {
    PutZigzag64(dst, s.graph_index);
    uint64_t flags = 0;
    if (s.consistent) flags |= 1u;
    if (s.counterfactual) flags |= 2u;
    PutVarint64(dst, flags);
    PutDoubleBits(dst, s.explainability);
    PutVarint64(dst, s.nodes.size());
    for (NodeId n : s.nodes) PutZigzag64(dst, n);
    EncodeGraph(s.subgraph, dst);
  }
}

Status DecodeView(ByteReader* in, ExplanationView* v) {
  ExplanationView out;
  int64_t label = 0;
  GVEX_RETURN_NOT_OK(in->GetZigzag64(&label));
  out.label = static_cast<int>(label);
  GVEX_RETURN_NOT_OK(in->GetDoubleBits(&out.explainability));
  uint64_t num_patterns = 0;
  GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &num_patterns));
  out.patterns.reserve(static_cast<size_t>(num_patterns));
  for (uint64_t i = 0; i < num_patterns; ++i) {
    Pattern p;
    GVEX_RETURN_NOT_OK(DecodePattern(in, &p));
    out.patterns.push_back(std::move(p));
  }
  uint64_t num_subgraphs = 0;
  GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &num_subgraphs));
  out.subgraphs.reserve(static_cast<size_t>(num_subgraphs));
  for (uint64_t i = 0; i < num_subgraphs; ++i) {
    ExplanationSubgraph s;
    int64_t graph_index = 0;
    GVEX_RETURN_NOT_OK(in->GetZigzag64(&graph_index));
    s.graph_index = static_cast<int>(graph_index);
    uint64_t flags = 0;
    GVEX_RETURN_NOT_OK(in->GetVarint64(&flags));
    if (flags > 3) {
      return Status::InvalidArgument("unknown subgraph flag bits");
    }
    s.consistent = (flags & 1u) != 0;
    s.counterfactual = (flags & 2u) != 0;
    GVEX_RETURN_NOT_OK(in->GetDoubleBits(&s.explainability));
    uint64_t num_ids = 0;
    GVEX_RETURN_NOT_OK(in->GetCount(in->remaining(), &num_ids));
    s.nodes.reserve(static_cast<size_t>(num_ids));
    for (uint64_t j = 0; j < num_ids; ++j) {
      int64_t id = 0;
      GVEX_RETURN_NOT_OK(in->GetZigzag64(&id));
      s.nodes.push_back(static_cast<NodeId>(id));
    }
    GVEX_RETURN_NOT_OK(DecodeGraph(in, &s.subgraph));
    out.subgraphs.push_back(std::move(s));
  }
  *v = std::move(out);
  return Status::OK();
}

// --- Binary view files (the entry points declared in explain/view_io.h) ---
// Layout: header(kViews), one framed record per view, and a framed footer
// holding the view count — a file truncated at a record boundary still
// fails to load instead of silently dropping the tail.

namespace {

constexpr uint8_t kViewRecordTag = 1;
constexpr uint8_t kViewFooterTag = 2;

}  // namespace

std::string SerializeViewsBinary(const std::vector<ExplanationView>& views) {
  std::string out;
  PutStoreHeader(&out, StoreFileKind::kViews);
  for (const ExplanationView& v : views) {
    std::string payload(1, static_cast<char>(kViewRecordTag));
    EncodeView(v, &payload);
    PutFramedRecord(&out, payload);
  }
  std::string footer(1, static_cast<char>(kViewFooterTag));
  PutVarint64(&footer, views.size());
  PutFramedRecord(&out, footer);
  return out;
}

Result<std::vector<ExplanationView>> ParseViewsBinary(
    const std::string& bytes) {
  ByteReader in(bytes);
  GVEX_RETURN_NOT_OK(in.GetStoreHeader(StoreFileKind::kViews));
  std::vector<ExplanationView> views;
  bool saw_footer = false;
  while (!in.done()) {
    std::string payload;
    GVEX_RETURN_NOT_OK(in.GetFramedRecord(&payload));
    if (payload.empty()) {
      return Status::InvalidArgument("empty record in view file");
    }
    ByteReader rec(payload.data() + 1, payload.size() - 1);
    const uint8_t tag = static_cast<uint8_t>(payload[0]);
    if (tag == kViewRecordTag) {
      if (saw_footer) {
        return Status::InvalidArgument("view record after footer");
      }
      ExplanationView v;
      GVEX_RETURN_NOT_OK(DecodeView(&rec, &v));
      if (!rec.done()) {
        return Status::InvalidArgument("trailing bytes in view record");
      }
      views.push_back(std::move(v));
    } else if (tag == kViewFooterTag) {
      uint64_t count = 0;
      GVEX_RETURN_NOT_OK(rec.GetVarint64(&count));
      if (count != views.size()) {
        return Status::InvalidArgument("view file footer count mismatch");
      }
      saw_footer = true;
    } else {
      return Status::InvalidArgument("unknown record tag in view file");
    }
  }
  if (!saw_footer) {
    return Status::InvalidArgument("view file missing footer (truncated?)");
  }
  return views;
}

Status SaveViewsBinary(const std::string& path,
                       const std::vector<ExplanationView>& views) {
  std::ofstream f(path, std::ios::binary);
  if (!f.good()) return Status::IOError("cannot open " + path);
  const std::string bytes = SerializeViewsBinary(views);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<ExplanationView>> LoadViewsBinary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return Status::IOError("cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ParseViewsBinary(ss.str());
}

}  // namespace gvex
