// Binary codec for the durable view store: little-endian varint framing
// with CRC32-protected records, used by the snapshot and WAL file formats
// (store/snapshot.h, store/wal.h) and by the binary view-file entry points
// declared in explain/view_io.h.
//
// Layout conventions shared by every store file:
//   * 12-byte file header: magic "GVXS" (fixed32), format version (fixed32),
//     file kind (fixed32). Readers reject unknown magic/version/kind before
//     touching any payload.
//   * After the header, a sequence of framed records:
//       [varint payload length][payload bytes][fixed32 CRC32 of payload]
//     so every byte of payload is checksummed and a flipped bit anywhere —
//     length, payload, or checksum — fails the frame, never a silent
//     misparse.
//   * Integers are LEB128 varints (signed values zigzag-encoded, so -1 is
//     one byte); floats/doubles are raw IEEE-754 bits in little-endian
//     fixed width, making round trips bit-identical.
//
// Error model: encoders cannot fail; decoders return Status and NEVER
// throw, crash, or partially populate their output on malformed input
// (fuzz-tested over truncations and single-byte flips in
// tests/store/codec_test.cpp).
//
// Thread-safety: all functions are pure; ByteReader instances are not
// shared across threads.

#ifndef GVEX_STORE_CODEC_H_
#define GVEX_STORE_CODEC_H_

#include <cstdint>
#include <string>

#include "explain/explanation.h"
#include "graph/graph.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace gvex {

// --- File header ---------------------------------------------------------

/// "GVXS" as a little-endian fixed32.
constexpr uint32_t kStoreMagic = 0x53585647u;
/// Bumped on any incompatible layout change; readers reject newer files.
constexpr uint32_t kStoreFormatVersion = 1;

/// What a store file contains (third header word).
enum class StoreFileKind : uint32_t {
  kSnapshot = 1,  ///< one whole ViewService epoch (store/snapshot.h)
  kWal = 2,       ///< append-only admission log (store/wal.h)
  kViews = 3,     ///< a bare view list (SaveViewsBinary / LoadViewsBinary)
  kDelta = 4,     ///< incremental snapshot: views changed since a parent
                  ///< epoch (store/snapshot.h, chain-resolved on recovery)
};

/// Total bytes of the fixed file header (magic + version + kind).
constexpr size_t kStoreHeaderBytes = 12;

/// CRC32 (IEEE 802.3 polynomial) over `n` bytes.
uint32_t Crc32(const void* data, size_t n);
uint32_t Crc32(const std::string& s);

// --- Append primitives ---------------------------------------------------

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Zigzag-encoded signed varint (small magnitudes stay small, -1 included).
void PutZigzag64(std::string* dst, int64_t v);
/// Raw IEEE bits — round trips are bit-identical, unlike any text format.
void PutDoubleBits(std::string* dst, double v);
void PutFloatBits(std::string* dst, float v);
void PutLengthPrefixed(std::string* dst, const std::string& s);

/// Appends the 12-byte file header.
void PutStoreHeader(std::string* dst, StoreFileKind kind);

/// Appends one framed record: [varint len][payload][fixed32 crc].
void PutFramedRecord(std::string* dst, const std::string& payload);

// --- Decoding ------------------------------------------------------------

/// Forward-only cursor over an immutable byte buffer. Every Get* either
/// succeeds and advances, or fails (typically InvalidArgument on truncated
/// input) and leaves the output untouched.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size)
      : p_(reinterpret_cast<const uint8_t*>(data)),
        end_(reinterpret_cast<const uint8_t*>(data) + size) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetVarint64(uint64_t* v);
  Status GetZigzag64(int64_t* v);
  Status GetDoubleBits(double* v);
  Status GetFloatBits(float* v);
  Status GetLengthPrefixed(std::string* s);

  /// Varint bounded to [0, limit] — rejects hostile counts before any
  /// allocation sized by them.
  Status GetCount(uint64_t limit, uint64_t* v);

  /// Validates magic + version and checks the kind matches.
  Status GetStoreHeader(StoreFileKind expected);

  /// Pulls the next framed record. NotFound at a clean end of buffer;
  /// InvalidArgument on truncation or CRC mismatch.
  Status GetFramedRecord(std::string* payload);

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

// --- Structure codecs ----------------------------------------------------
// Each Encode appends to `dst`; each Decode reads exactly what Encode wrote
// and rejects structurally invalid data (bad node ids, broken edges,
// disconnected patterns) via the same Status paths as the text parsers.

void EncodeGraph(const Graph& g, std::string* dst);
Status DecodeGraph(ByteReader* in, Graph* g);

void EncodePattern(const Pattern& p, std::string* dst);
Status DecodePattern(ByteReader* in, Pattern* p);

void EncodeView(const ExplanationView& v, std::string* dst);
Status DecodeView(ByteReader* in, ExplanationView* v);

}  // namespace gvex

#endif  // GVEX_STORE_CODEC_H_
