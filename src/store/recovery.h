// The recovery verdict for a durable store directory, shared by
// ViewService::Open (which acts on it) and `gvex_store verify` (which only
// reports it). Keeping the verdict in ONE place guarantees the tool never
// calls a store recoverable that Open refuses — the fail-stop rules
// (acknowledged-state reachability, WAL epoch contiguity) live here and
// nowhere else.

#ifndef GVEX_STORE_RECOVERY_H_
#define GVEX_STORE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "store/snapshot.h"
#include "store/wal.h"
#include "util/status.h"

namespace gvex {

/// What recovery would start from and reach. Produced by PlanRecovery.
struct RecoveryPlan {
  /// Every snapshot epoch on disk, ascending (loadable or not).
  std::vector<uint64_t> epochs;
  /// Every delta epoch on disk, ascending (loadable or not).
  std::vector<uint64_t> delta_epochs;
  /// The resolved chain image: the newest base snapshot that validates
  /// with every attachable delta folded in. `snapshot.epoch` is the CHAIN
  /// TIP (base epoch when no delta applied); `snapshot.views` are the
  /// merged views. Default-constructed when no base exists — recovery
  /// starts from the empty epoch 0.
  SnapshotData snapshot;
  bool have_snapshot = false;
  /// Epoch of the base (full) snapshot the chain roots at (equal to
  /// snapshot.epoch when no delta applied; 0 when no base exists).
  uint64_t base_epoch = 0;
  /// Delta epochs folded into `snapshot`, ascending (empty = pure base).
  std::vector<uint64_t> chain;
  /// True when `snapshot.postings` still describe `snapshot.views` — i.e.
  /// no delta was applied. Applying a delta changes the view set, so the
  /// index must be REBUILT over the merged views (postings are cleared).
  bool postings_valid = false;
  /// The WAL's longest valid prefix (empty when no WAL file exists).
  WalReplay replay;
  bool have_wal = false;
  /// The epoch recovery reaches after replaying the WAL onto the chain.
  uint64_t final_epoch = 0;
};

/// Computes the recovery plan for `dir` WITHOUT side effects: no WAL
/// truncation, no lock acquisition, nothing written. Resolves snapshot
/// CHAINS: for the newest base snapshot that validates, every delta whose
/// parent epoch matches the chain tip so far is folded in, ascending
/// (newest valid chain wins; a base that does not validate falls back to
/// an older one, whose chain may re-attach earlier deltas). Fail-stops
/// (IOError) when acknowledged state is provably unreachable:
///   - snapshot files exist but none validates;
///   - a WAL record's epoch cannot attach contiguously to the chain tip
///     (admissions bump the epoch by exactly one, so a gap proves the
///     admissions in between are lost);
///   - replay ends below the newest on-disk snapshot OR delta epoch (that
///     state was acknowledged, but neither a valid chain nor the WAL
///     reaches it — e.g. the newest delta is corrupt and Compact already
///     reset the WAL).
/// A directory with no snapshots, deltas, or WAL is a fresh store
/// (epoch 0).
Result<RecoveryPlan> PlanRecovery(const std::string& dir);

/// What VerifyStore reports on top of the plan itself.
struct StoreVerifyReport {
  RecoveryPlan plan;
  /// True when another process held the store LOCK at probe time (a live
  /// primary, or a replica applier mirroring into the directory). The plan
  /// is then a point-in-time read that may trail the writer by an append.
  bool writer_active = false;
};

/// The SHARED/READ verification path: computes the recovery verdict for
/// `dir` without ever taking the store LOCK exclusively — a `gvex_store
/// verify` against a directory a live writer (or replication applier) owns
/// must observe, never wedge. The writer probe is a non-blocking flock
/// LOCK_SH that is released immediately (it cannot block the verifier, and
/// holding it for the probe's instant cannot starve a LOCK_EX acquirer);
/// everything else is the side-effect-free PlanRecovery. Nothing in `dir`
/// is created, truncated, or locked when this returns.
Result<StoreVerifyReport> VerifyStore(const std::string& dir);

}  // namespace gvex

#endif  // GVEX_STORE_RECOVERY_H_
