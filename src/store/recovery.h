// The recovery verdict for a durable store directory, shared by
// ViewService::Open (which acts on it) and `gvex_store verify` (which only
// reports it). Keeping the verdict in ONE place guarantees the tool never
// calls a store recoverable that Open refuses — the fail-stop rules
// (acknowledged-state reachability, WAL epoch contiguity) live here and
// nowhere else.

#ifndef GVEX_STORE_RECOVERY_H_
#define GVEX_STORE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "store/snapshot.h"
#include "store/wal.h"
#include "util/status.h"

namespace gvex {

/// What recovery would start from and reach. Produced by PlanRecovery.
struct RecoveryPlan {
  /// Every snapshot epoch on disk, ascending (loadable or not).
  std::vector<uint64_t> epochs;
  /// Newest snapshot that validates (default-constructed when none —
  /// recovery starts from the empty epoch 0).
  SnapshotData snapshot;
  bool have_snapshot = false;
  /// The WAL's longest valid prefix (empty when no WAL file exists).
  WalReplay replay;
  bool have_wal = false;
  /// The epoch recovery reaches after replaying the WAL onto the snapshot.
  uint64_t final_epoch = 0;
};

/// Computes the recovery plan for `dir` WITHOUT side effects: no WAL
/// truncation, no lock acquisition, nothing written. Fail-stops (IOError)
/// when acknowledged state is provably unreachable:
///   - snapshot files exist but none validates;
///   - a WAL record's epoch cannot attach contiguously to the newest
///     loadable snapshot (admissions bump the epoch by exactly one, so a
///     gap proves the admissions in between are lost);
///   - replay ends below the newest on-disk snapshot epoch (that state was
///     acknowledged, but neither a valid snapshot nor the WAL reaches it).
/// A directory with no snapshots and no WAL is a fresh store (epoch 0).
Result<RecoveryPlan> PlanRecovery(const std::string& dir);

}  // namespace gvex

#endif  // GVEX_STORE_RECOVERY_H_
