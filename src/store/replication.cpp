#include "store/replication.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "store/codec.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "util/string_util.h"

namespace gvex {

namespace {

Result<uint64_t> FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound(StrFormat("cannot stat %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

ReplicationSource::ReplicationSource(std::string dir,
                                     std::function<uint64_t()> epoch_provider)
    : dir_(std::move(dir)), epoch_provider_(std::move(epoch_provider)) {}

bool ReplicationSource::ValidFileName(const std::string& name) {
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos || name == "." || name == "..") {
    return false;
  }
  if (name == WalFileName()) return true;
  if (ParseSnapshotFileName(name).ok()) return true;
  if (ParseDeltaFileName(name).ok()) return true;
  return false;
}

Result<ReplManifest> ReplicationSource::Manifest() const {
  ReplManifest m;
  if (epoch_provider_) m.epoch = epoch_provider_();

  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return Status::IOError(StrFormat("cannot open store directory %s: %s",
                                     dir_.c_str(), std::strerror(errno)));
  }
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == WalFileName() || !ValidFileName(name)) continue;
    auto bytes = FileBytes(dir_ + "/" + name);
    // A file pruned between readdir and stat simply drops out.
    if (!bytes.ok()) continue;
    m.files.push_back(ReplFileInfo{name, bytes.value()});
  }
  ::closedir(d);
  std::sort(m.files.begin(), m.files.end(),
            [](const ReplFileInfo& a, const ReplFileInfo& b) {
              return a.name < b.name;
            });

  const std::string wal_path = dir_ + "/" + WalFileName();
  auto wal_bytes = FileBytes(wal_path);
  if (wal_bytes.ok()) {
    m.wal_bytes = wal_bytes.value();
    auto start = ReadWalStart(wal_path);
    // A WAL torn below its header reports no records; replication treats
    // it as an empty log (the applier resyncs when it grows a real one).
    if (start.ok()) {
      m.wal_has_records = start.value().has_records;
      m.wal_first_epoch = start.value().first_epoch;
    }
  }
  return m;
}

Result<std::string> ReplicationSource::Fetch(const std::string& name,
                                             uint64_t offset,
                                             uint64_t max_len) const {
  if (!ValidFileName(name)) {
    return Status::InvalidArgument("not a replicable file: " + name);
  }
  std::ifstream f(dir_ + "/" + name, std::ios::binary);
  if (!f.good()) return Status::NotFound("no file " + name);
  f.seekg(static_cast<std::streamoff>(offset));
  if (!f.good()) return std::string();  // offset past EOF
  std::string out;
  out.resize(static_cast<size_t>(max_len));
  f.read(&out[0], static_cast<std::streamsize>(max_len));
  out.resize(static_cast<size_t>(f.gcount()));
  return out;
}

Result<uint32_t> ReplicationSource::PrefixCrc(const std::string& name,
                                              uint64_t bytes) const {
  if (!ValidFileName(name)) {
    return Status::InvalidArgument("not a replicable file: " + name);
  }
  std::ifstream f(dir_ + "/" + name, std::ios::binary);
  if (!f.good()) return Status::NotFound("no file " + name);
  // Incremental CRC via the one-shot helper over a rolling buffer would
  // change the polynomial chaining; read the prefix whole instead (prefix
  // checks run on generation changes and divergence probes, not per poll).
  std::string buf;
  buf.resize(static_cast<size_t>(bytes));
  f.read(&buf[0], static_cast<std::streamsize>(bytes));
  if (static_cast<uint64_t>(f.gcount()) != bytes) {
    return Status::InvalidArgument(
        StrFormat("%s holds fewer than %llu bytes", name.c_str(),
                  static_cast<unsigned long long>(bytes)));
  }
  return Crc32(buf);
}

}  // namespace gvex
