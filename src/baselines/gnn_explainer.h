// GNNExplainer [Ying et al., NeurIPS'19] re-implementation: learns a soft
// edge mask by gradient ascent on the mutual-information surrogate
//   max_M  log P(label | G ⊙ σ(M)) - λ1 ||σ(M)||_1 - λ2 H(σ(M)),
// then thresholds the mask into an explanation subgraph within the node
// budget. Simplification vs. the original (documented in DESIGN.md): degree
// normalization of the propagation operator is taken from the unmasked graph
// so the mask gradient has the closed form dL/dS computed by the GCN
// backward pass.

#ifndef GVEX_BASELINES_GNN_EXPLAINER_H_
#define GVEX_BASELINES_GNN_EXPLAINER_H_

#include "baselines/explainer.h"

namespace gvex {

/// Mask-learning hyperparameters.
struct GnnExplainerOptions {
  int epochs = 100;
  float lr = 0.05f;
  float l1_coeff = 0.01f;      // sparsity regularizer on σ(m)
  float entropy_coeff = 0.1f;  // pushes mask entries toward {0,1}
};

/// Edge-mask learner.
class GnnExplainer : public Explainer {
 public:
  explicit GnnExplainer(const GcnModel* model,
                        GnnExplainerOptions options = {});

  std::string name() const override { return "GNNExplainer"; }

  Result<ExplanationSubgraph> Explain(const Graph& g, int graph_index,
                                      int label, int max_nodes) override;

  /// The learned mask of the last Explain call (sigmoid-activated, aligned
  /// with graph.edges()); exposed for tests.
  const std::vector<float>& last_mask() const { return last_mask_; }

 private:
  const GcnModel* model_;
  GnnExplainerOptions options_;
  std::vector<float> last_mask_;
};

}  // namespace gvex

#endif  // GVEX_BASELINES_GNN_EXPLAINER_H_
