#include "baselines/pg_explainer.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gnn/adam.h"
#include "gnn/loss.h"
#include "graph/subgraph.h"
#include "la/matrix_ops.h"
#include "util/rng.h"

namespace gvex {

namespace {

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Per-edge input feature: concatenated endpoint embeddings (1 x 2d).
Matrix EdgeFeature(const Matrix& emb, const Edge& e) {
  Matrix f(1, emb.cols() * 2);
  for (int j = 0; j < emb.cols(); ++j) {
    f.at(0, j) = emb.at(e.u, j);
    f.at(0, emb.cols() + j) = emb.at(e.v, j);
  }
  return f;
}

}  // namespace

PgExplainer::PgExplainer(const GcnModel* model, PgExplainerOptions options)
    : model_(model), options_(options) {
  Rng rng(options_.seed);
  const int in = model_->config().hidden_dim * 2;
  mlp1_ = DenseLayer(in, options_.hidden_dim, &rng);
  mlp2_ = DenseLayer(options_.hidden_dim, 1, &rng);
}

std::vector<float> PgExplainer::EdgeLogits(const Graph& g,
                                           const Matrix& embeddings) const {
  std::vector<float> logits;
  logits.reserve(static_cast<size_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    Matrix f = EdgeFeature(embeddings, e);
    Matrix h1 = Relu(mlp1_.Forward(f));
    logits.push_back(mlp2_.Forward(h1).at(0, 0));
  }
  return logits;
}

Status PgExplainer::Fit(const GraphDatabase& db, int label, int max_graphs) {
  std::vector<int> group = db.LabelGroup(label);
  if (group.empty()) {
    return Status::NotFound("empty label group for PGExplainer::Fit");
  }
  if (static_cast<int>(group.size()) > max_graphs) {
    group.resize(static_cast<size_t>(max_graphs));
  }
  // Cache per-graph embeddings (the GNN is frozen).
  std::vector<Matrix> embeddings;
  embeddings.reserve(group.size());
  for (int gi : group) {
    embeddings.push_back(model_->NodeEmbeddings(db.graph(gi)));
  }

  AdamConfig adam_cfg;
  adam_cfg.lr = options_.lr;
  Adam opt({mlp1_.mutable_weight(), mlp2_.mutable_weight()}, nullptr,
           adam_cfg);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    Matrix gw1(mlp1_.in_dim(), mlp1_.out_dim());
    Matrix gw2(mlp2_.in_dim(), mlp2_.out_dim());
    std::vector<float> gb1(static_cast<size_t>(mlp1_.out_dim()), 0.0f);
    std::vector<float> gb2(static_cast<size_t>(mlp2_.out_dim()), 0.0f);

    for (size_t k = 0; k < group.size(); ++k) {
      const Graph& g = db.graph(group[k]);
      if (g.num_edges() == 0) continue;
      const Matrix& emb = embeddings[k];
      // Forward: per-edge mask from the shared MLP.
      std::vector<Matrix> feats;
      std::vector<Matrix> h1s;
      std::vector<Matrix> z1s;
      std::vector<float> mask(static_cast<size_t>(g.num_edges()));
      for (int ei = 0; ei < g.num_edges(); ++ei) {
        Matrix f = EdgeFeature(emb, g.edges()[static_cast<size_t>(ei)]);
        Matrix z1 = mlp1_.Forward(f);
        Matrix h1 = Relu(z1);
        mask[static_cast<size_t>(ei)] = Sigmoid(mlp2_.Forward(h1).at(0, 0));
        feats.push_back(std::move(f));
        z1s.push_back(std::move(z1));
        h1s.push_back(std::move(h1));
      }
      // Masked model forward + CE toward the explained label.
      Matrix x = g.features();
      if (x.empty()) x = Matrix(g.num_nodes(), model_->config().input_dim, 1.0f);
      SparseMatrix s = BuildMaskedOperator(g, mask);
      GcnModel::Trace trace = model_->ForwardWithOperator(s, x);
      Matrix dlogits;
      SoftmaxCrossEntropy(trace.logits, label, &dlogits);
      GcnModel::Gradients model_grads = model_->ZeroGradients();
      Matrix grad_s(g.num_nodes(), g.num_nodes());
      model_->Backward(trace, dlogits, &model_grads, nullptr, &grad_s);

      // Per-edge mask gradient (same unmasked-normalization simplification
      // as GNNExplainer) + regularizers, backprop through the MLP.
      std::vector<float> deg(static_cast<size_t>(g.num_nodes()), 1.0f);
      for (const Edge& ed : g.edges()) {
        deg[static_cast<size_t>(ed.u)] += 1.0f;
        deg[static_cast<size_t>(ed.v)] += 1.0f;
      }
      for (int ei = 0; ei < g.num_edges(); ++ei) {
        const Edge& ed = g.edges()[static_cast<size_t>(ei)];
        const float base = 1.0f / std::sqrt(deg[static_cast<size_t>(ed.u)] *
                                            deg[static_cast<size_t>(ed.v)]);
        float dmask = base * (grad_s.at(ed.u, ed.v) + grad_s.at(ed.v, ed.u));
        const float sm = mask[static_cast<size_t>(ei)];
        const float kEps = 1e-6f;
        dmask += options_.l1_coeff;
        dmask += options_.entropy_coeff *
                 (-std::log(sm + kEps) + std::log(1.0f - sm + kEps));
        const float dlogit = dmask * sm * (1.0f - sm);
        Matrix dl(1, 1);
        dl.at(0, 0) = dlogit;
        Matrix dh1 = mlp2_.Backward(h1s[static_cast<size_t>(ei)], dl, &gw2,
                                    &gb2);
        Matrix dz1 = Hadamard(dh1, ReluMask(z1s[static_cast<size_t>(ei)]));
        (void)mlp1_.Backward(feats[static_cast<size_t>(ei)], dz1, &gw1, &gb1);
      }
    }
    opt.Step({&gw1, &gw2}, nullptr);
    // Biases: plain SGD (Adam tracks the weight matrices only).
    for (size_t j = 0; j < gb1.size(); ++j) {
      (*mlp1_.mutable_bias())[j] -= options_.lr * gb1[j];
    }
    for (size_t j = 0; j < gb2.size(); ++j) {
      (*mlp2_.mutable_bias())[j] -= options_.lr * gb2[j];
    }
  }
  trained_ = true;
  return Status::OK();
}

Result<ExplanationSubgraph> PgExplainer::Explain(const Graph& g,
                                                 int graph_index, int label,
                                                 int max_nodes) {
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  if (!trained_) {
    return Status::FailedPrecondition("PgExplainer::Fit must run first");
  }
  Matrix emb = model_->NodeEmbeddings(g);
  std::vector<float> logits = EdgeLogits(g, emb);

  std::vector<int> order(logits.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return logits[static_cast<size_t>(a)] > logits[static_cast<size_t>(b)];
  });
  std::set<NodeId> nodes;
  for (int ei : order) {
    const Edge& ed = g.edges()[static_cast<size_t>(ei)];
    std::set<NodeId> tentative = nodes;
    tentative.insert(ed.u);
    tentative.insert(ed.v);
    if (static_cast<int>(tentative.size()) > max_nodes) {
      if (static_cast<int>(nodes.size()) >= max_nodes) break;
      continue;
    }
    nodes = std::move(tentative);
  }
  if (nodes.empty()) nodes.insert(0);

  ExplanationSubgraph out;
  out.graph_index = graph_index;
  out.nodes.assign(nodes.begin(), nodes.end());
  auto sub = ExtractInducedSubgraph(g, out.nodes);
  if (!sub.ok()) return sub.status();
  out.subgraph = std::move(sub.value().graph);
  AnnotateVerification(*model_, g, &out, label);
  return out;
}

}  // namespace gvex
