#include "baselines/gstarx.h"

#include <algorithm>
#include <unordered_set>

#include "graph/subgraph.h"

namespace gvex {

GStarX::GStarX(const GnnClassifier* model, GStarXOptions options)
    : model_(model), options_(options) {}

Result<ExplanationSubgraph> GStarX::Explain(const Graph& g, int graph_index,
                                            int label, int max_nodes) {
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  Rng rng(options_.seed + static_cast<uint64_t>(graph_index));
  const int n = g.num_nodes();

  std::vector<double> importance(static_cast<size_t>(n), 0.0);
  std::vector<int> counts(static_cast<size_t>(n), 0);

  for (int s = 0; s < options_.coalition_samples; ++s) {
    // Grow a random connected coalition by BFS with random acceptance.
    NodeId seed =
        static_cast<NodeId>(rng.NextUint(static_cast<uint64_t>(n)));
    std::vector<NodeId> coalition{seed};
    std::unordered_set<NodeId> in_set{seed};
    std::vector<NodeId> frontier{seed};
    while (static_cast<int>(coalition.size()) < options_.max_coalition_size &&
           !frontier.empty()) {
      NodeId u = frontier[static_cast<size_t>(
          rng.NextUint(static_cast<uint64_t>(frontier.size())))];
      std::vector<NodeId> candidates;
      for (const Neighbor& nb : g.neighbors(u)) {
        if (!in_set.count(nb.node)) candidates.push_back(nb.node);
      }
      if (candidates.empty()) {
        frontier.erase(std::find(frontier.begin(), frontier.end(), u));
        continue;
      }
      NodeId next = candidates[static_cast<size_t>(
          rng.NextUint(static_cast<uint64_t>(candidates.size())))];
      coalition.push_back(next);
      in_set.insert(next);
      frontier.push_back(next);
      if (rng.NextBool(0.25)) break;  // variable coalition sizes
    }

    // Marginal contribution of each member: v(C) - v(C \ {u}).
    auto sub_full = ExtractInducedSubgraph(g, coalition);
    if (!sub_full.ok()) continue;
    const double v_full = model_->ProbaOf(sub_full.value().graph, label);
    for (NodeId u : coalition) {
      std::vector<NodeId> without;
      for (NodeId w : coalition) {
        if (w != u) without.push_back(w);
      }
      double v_without = 1.0 / model_->num_classes();
      if (!without.empty()) {
        auto sub_wo = ExtractInducedSubgraph(g, without);
        if (sub_wo.ok()) v_without = model_->ProbaOf(sub_wo.value().graph, label);
      }
      importance[static_cast<size_t>(u)] += v_full - v_without;
      counts[static_cast<size_t>(u)] += 1;
    }
  }
  for (int v = 0; v < n; ++v) {
    if (counts[static_cast<size_t>(v)] > 0) {
      importance[static_cast<size_t>(v)] /= counts[static_cast<size_t>(v)];
    }
  }

  // Top-k by importance, grown connected from the best node so the
  // explanation is a structure rather than scattered nodes.
  NodeId best = 0;
  for (NodeId v = 1; v < n; ++v) {
    if (importance[static_cast<size_t>(v)] >
        importance[static_cast<size_t>(best)]) {
      best = v;
    }
  }
  ExplanationSubgraph out;
  out.graph_index = graph_index;
  out.nodes = GrowConnectedSet(g, best, importance, max_nodes);
  auto sub = ExtractInducedSubgraph(g, out.nodes);
  if (!sub.ok()) return sub.status();
  out.subgraph = std::move(sub.value().graph);
  AnnotateVerification(*model_, g, &out, label);
  return out;
}

}  // namespace gvex
