#include "baselines/subgraphx.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "graph/connectivity.h"
#include "graph/subgraph.h"

namespace gvex {

namespace {

// Key for visited search states (sorted node list rendered to a string).
std::string StateKey(const std::vector<NodeId>& nodes) {
  std::string key;
  for (NodeId v : nodes) {
    key += std::to_string(v);
    key.push_back(',');
  }
  return key;
}

}  // namespace

SubgraphX::SubgraphX(const GnnClassifier* model, SubgraphXOptions options)
    : model_(model), options_(options) {}

double SubgraphX::ShapleyValue(const Graph& g,
                               const std::vector<NodeId>& coalition,
                               int label, Rng* rng) const {
  // Players: the coalition plus its 1-hop neighbors (the paper's l-hop
  // restriction with l = num GNN layers truncated to 1 for cost).
  std::unordered_set<NodeId> players(coalition.begin(), coalition.end());
  for (NodeId v : coalition) {
    for (const Neighbor& nb : g.neighbors(v)) players.insert(nb.node);
  }
  std::vector<NodeId> outside;
  for (NodeId v : players) {
    bool in_coal = std::find(coalition.begin(), coalition.end(), v) !=
                   coalition.end();
    if (!in_coal) outside.push_back(v);
  }
  double total = 0.0;
  for (int s = 0; s < options_.shapley_samples; ++s) {
    // Random subset of outside players joins; marginal contribution of the
    // coalition = P(with coalition) - P(without).
    std::vector<NodeId> context;
    for (NodeId v : outside) {
      if (rng->NextBool(0.5)) context.push_back(v);
    }
    std::vector<NodeId> with_c = context;
    with_c.insert(with_c.end(), coalition.begin(), coalition.end());
    auto sub_with = ExtractInducedSubgraph(g, with_c);
    auto sub_without = ExtractInducedSubgraph(g, context);
    if (!sub_with.ok() || !sub_without.ok()) continue;
    const double p_with = model_->ProbaOf(sub_with.value().graph, label);
    const double p_without =
        context.empty() ? 1.0 / model_->num_classes()
                        : model_->ProbaOf(sub_without.value().graph, label);
    total += p_with - p_without;
  }
  return total / options_.shapley_samples;
}

Result<ExplanationSubgraph> SubgraphX::Explain(const Graph& g,
                                               int graph_index, int label,
                                               int max_nodes) {
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  Rng rng(options_.seed + static_cast<uint64_t>(graph_index));

  // MCTS over pruning actions. Node of the tree = current node subset.
  struct TreeNode {
    std::vector<NodeId> nodes;
    double total_reward = 0.0;
    int visits = 0;
  };
  std::map<std::string, TreeNode> tree;
  std::vector<NodeId> root(static_cast<size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) root[static_cast<size_t>(v)] = v;

  std::vector<NodeId> best_leaf = root;
  double best_value = -1e18;

  for (int iter = 0; iter < options_.mcts_iterations; ++iter) {
    // Rollout: from the root, repeatedly prune the node whose removal keeps
    // the highest UCB-ish score until within budget.
    std::vector<NodeId> current = root;
    std::vector<std::string> path{StateKey(current)};
    while (static_cast<int>(current.size()) > max_nodes &&
           current.size() > 1) {
      // Candidate prunes: drop one node (sampled subset for large graphs).
      std::vector<size_t> cand_idx;
      const size_t limit = 12;
      if (current.size() <= limit) {
        for (size_t i = 0; i < current.size(); ++i) cand_idx.push_back(i);
      } else {
        for (size_t c = 0; c < limit; ++c) {
          cand_idx.push_back(static_cast<size_t>(
              rng.NextUint(static_cast<uint64_t>(current.size()))));
        }
      }
      double best_ucb = -1e18;
      std::vector<NodeId> best_child;
      for (size_t idx : cand_idx) {
        std::vector<NodeId> child = current;
        child.erase(child.begin() + static_cast<std::ptrdiff_t>(idx));
        std::string key = StateKey(child);
        auto it = tree.find(key);
        double exploit = 0.0;
        int visits = 0;
        if (it != tree.end() && it->second.visits > 0) {
          exploit = it->second.total_reward / it->second.visits;
          visits = it->second.visits;
        }
        const double explore =
            options_.exploration_c *
            std::sqrt(std::log(static_cast<double>(iter + 2)) /
                      (1.0 + visits));
        const double ucb = exploit + explore * rng.NextDouble();
        if (ucb > best_ucb) {
          best_ucb = ucb;
          best_child = std::move(child);
        }
      }
      current = std::move(best_child);
      path.push_back(StateKey(current));
    }
    // Evaluate leaf by sampled Shapley value.
    const double value = ShapleyValue(g, current, label, &rng);
    if (value > best_value ||
        (value == best_value &&
         current.size() < best_leaf.size())) {
      best_value = value;
      best_leaf = current;
    }
    for (const std::string& key : path) {
      TreeNode& tn = tree[key];
      tn.total_reward += value;
      tn.visits += 1;
    }
  }

  std::sort(best_leaf.begin(), best_leaf.end());
  ExplanationSubgraph out;
  out.graph_index = graph_index;
  out.nodes = best_leaf;
  auto sub = ExtractInducedSubgraph(g, out.nodes);
  if (!sub.ok()) return sub.status();
  out.subgraph = std::move(sub.value().graph);
  AnnotateVerification(*model_, g, &out, label);
  return out;
}

}  // namespace gvex
