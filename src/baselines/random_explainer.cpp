#include "baselines/random_explainer.h"

#include "graph/subgraph.h"

namespace gvex {

RandomExplainer::RandomExplainer(const GnnClassifier* model, uint64_t seed)
    : model_(model), rng_(seed) {}

Result<ExplanationSubgraph> RandomExplainer::Explain(const Graph& g,
                                                     int graph_index,
                                                     int label,
                                                     int max_nodes) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  std::vector<double> score(static_cast<size_t>(g.num_nodes()));
  for (auto& s : score) s = rng_.NextDouble();
  NodeId seed = static_cast<NodeId>(rng_.NextUint(
      static_cast<uint64_t>(g.num_nodes())));
  ExplanationSubgraph out;
  out.graph_index = graph_index;
  out.nodes = GrowConnectedSet(g, seed, score, max_nodes);
  auto sub = ExtractInducedSubgraph(g, out.nodes);
  if (!sub.ok()) return sub.status();
  out.subgraph = std::move(sub.value().graph);
  AnnotateVerification(*model_, g, &out, label);
  return out;
}

}  // namespace gvex
