#include "baselines/gcf_explainer.h"

#include <algorithm>

#include "graph/subgraph.h"
#include "util/rng.h"

namespace gvex {

namespace {

struct SearchResult {
  std::vector<NodeId> deleted;
  double remaining_p = 1.0;
  bool flipped = false;
};

// One greedy counterfactual-deletion search. `noise` perturbs the greedy
// choice (restart diversification).
SearchResult GreedySearch(const GnnClassifier& model, const Graph& g, int label,
                          int budget, double noise, Rng* rng) {
  SearchResult result;
  std::vector<NodeId> remaining(static_cast<size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    remaining[static_cast<size_t>(v)] = v;
  }
  for (int round = 0; round < budget; ++round) {
    double best_p = 2.0;
    size_t best_idx = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      std::vector<NodeId> del = result.deleted;
      del.push_back(remaining[i]);
      auto rest = RemoveNodes(g, del);
      if (!rest.ok()) continue;
      double p = model.ProbaOf(rest.value().graph, label);
      if (noise > 0.0) p += noise * rng->NextDouble();
      if (p < best_p) {
        best_p = p;
        best_idx = i;
      }
    }
    result.deleted.push_back(remaining[best_idx]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_idx));
    auto rest = RemoveNodes(g, result.deleted);
    if (rest.ok()) {
      result.remaining_p = model.ProbaOf(rest.value().graph, label);
      if (model.Predict(rest.value().graph) != label) {
        result.flipped = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace

GcfExplainer::GcfExplainer(const GnnClassifier* model, GcfExplainerOptions options)
    : model_(model), options_(options) {}

Result<ExplanationSubgraph> GcfExplainer::Explain(const Graph& g,
                                                  int graph_index, int label,
                                                  int max_nodes) {
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  Rng rng(options_.seed + static_cast<uint64_t>(graph_index));
  const int budget = std::min(
      {max_nodes, options_.max_deletions, g.num_nodes() - 1});

  SearchResult best;
  bool have_best = false;
  const int restarts = std::max(1, options_.restarts);
  for (int r = 0; r < restarts; ++r) {
    SearchResult res =
        GreedySearch(*model_, g, label, budget, r == 0 ? 0.0 : 0.05, &rng);
    const bool better =
        !have_best ||
        (res.flipped && !best.flipped) ||
        (res.flipped == best.flipped &&
         (res.deleted.size() < best.deleted.size() ||
          (res.deleted.size() == best.deleted.size() &&
           res.remaining_p < best.remaining_p)));
    if (better) {
      best = std::move(res);
      have_best = true;
    }
  }

  std::sort(best.deleted.begin(), best.deleted.end());
  ExplanationSubgraph out;
  out.graph_index = graph_index;
  out.nodes = best.deleted;
  auto sub = ExtractInducedSubgraph(g, out.nodes);
  if (!sub.ok()) return sub.status();
  out.subgraph = std::move(sub.value().graph);
  AnnotateVerification(*model_, g, &out, label);
  return out;
}

}  // namespace gvex
