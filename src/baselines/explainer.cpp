#include "baselines/explainer.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "explain/verify.h"
#include "graph/subgraph.h"

namespace gvex {

Result<std::vector<ExplanationSubgraph>> Explainer::ExplainGroup(
    const GraphDatabase& db, int label, int max_nodes) {
  std::vector<ExplanationSubgraph> out;
  for (int i : db.LabelGroup(label)) {
    auto ex = Explain(db.graph(i), i, label, max_nodes);
    if (ex.ok()) out.push_back(std::move(ex).value());
  }
  if (out.empty()) {
    return Status::FailedPrecondition("no explanations produced for group");
  }
  return out;
}

void AnnotateVerification(const GnnClassifier& model, const Graph& g,
                          ExplanationSubgraph* ex, int label) {
  auto ev = EVerify(model, g, ex->nodes, label);
  if (ev.ok()) {
    ex->consistent = ev.value().consistent;
    ex->counterfactual = ev.value().counterfactual;
  }
}

std::vector<NodeId> GrowConnectedSet(const Graph& g, NodeId seed,
                                     const std::vector<double>& score,
                                     int max_nodes) {
  std::vector<NodeId> result;
  if (g.num_nodes() == 0 || max_nodes <= 0) return result;
  std::unordered_set<NodeId> in_set;
  // Max-heap of frontier nodes by score.
  auto cmp = [&](NodeId a, NodeId b) {
    return score[static_cast<size_t>(a)] < score[static_cast<size_t>(b)];
  };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(cmp)> frontier(cmp);
  std::unordered_set<NodeId> queued;
  frontier.push(seed);
  queued.insert(seed);
  while (!frontier.empty() && static_cast<int>(result.size()) < max_nodes) {
    NodeId v = frontier.top();
    frontier.pop();
    if (in_set.count(v)) continue;
    in_set.insert(v);
    result.push_back(v);
    for (const Neighbor& nb : g.neighbors(v)) {
      if (!in_set.count(nb.node) && !queued.count(nb.node)) {
        frontier.push(nb.node);
        queued.insert(nb.node);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace gvex
