// XGNN [Yuan et al., KDD'20] re-implementation: *model-level* explanation by
// graph generation. Instead of explaining one input graph, it synthesizes a
// small graph that maximizes the classifier's probability for a target
// label — a global "what does the model think this class looks like"
// prototype. Simplification vs. the original (DESIGN.md): greedy generation
// with a node-type/edge vocabulary learned from a reference database instead
// of an RL-trained generator. Excluded from the paper's fidelity comparison
// (no input instance ⇒ fidelity undefined), but included here for
// completeness of Table 1's method landscape.

#ifndef GVEX_BASELINES_XGNN_H_
#define GVEX_BASELINES_XGNN_H_

#include "gnn/classifier.h"
#include "graph/graph_database.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace gvex {

/// Generation knobs.
struct XgnnOptions {
  int max_nodes = 8;
  /// Stop when no single edit improves P(label) by at least this much.
  float min_gain = 1e-4f;
};

/// Model-level prototype generator.
class Xgnn {
 public:
  /// `reference_db` supplies the node-type / edge vocabulary and feature
  /// encoding (one-hot over types, like the generators).
  Xgnn(const GnnClassifier* model, const GraphDatabase* reference_db,
       XgnnOptions options = {});

  /// Generates a class prototype for `label`; also reports the probability
  /// the model assigns it.
  struct Prototype {
    Pattern pattern;
    double probability = 0.0;
  };
  Result<Prototype> Generate(int label) const;

 private:
  /// Installs one-hot features on a candidate graph.
  Status Encode(Graph* g) const;

  const GnnClassifier* model_;
  const GraphDatabase* db_;
  XgnnOptions options_;
  int num_types_ = 0;
  int feature_dim_ = 0;
};

}  // namespace gvex

#endif  // GVEX_BASELINES_XGNN_H_
