// PGExplainer [Luo et al., NeurIPS'20] re-implementation: a *parameterized*
// explainer — a small MLP maps each edge's endpoint embeddings to a mask
// logit, trained once over a collection of graphs to maximize the predicted
// probability of the explained label under the masked propagation, with
// sparsity and entropy regularizers. At inference the trained MLP masks any
// instance in one shot (no per-instance optimization). Not model-agnostic
// (Table 1): it differentiates through the GCN like GNNExplainer.

#ifndef GVEX_BASELINES_PG_EXPLAINER_H_
#define GVEX_BASELINES_PG_EXPLAINER_H_

#include "baselines/explainer.h"
#include "gnn/dense_layer.h"
#include "gnn/gcn_model.h"
#include "graph/graph_database.h"

namespace gvex {

/// Training knobs for the shared mask MLP.
struct PgExplainerOptions {
  int epochs = 30;
  float lr = 0.02f;
  float l1_coeff = 0.01f;
  float entropy_coeff = 0.05f;
  int hidden_dim = 16;
  uint64_t seed = 47;
};

/// Parameterized edge-mask explainer.
class PgExplainer : public Explainer {
 public:
  /// Requires the concrete GCN (gradients through the propagation operator).
  explicit PgExplainer(const GcnModel* model, PgExplainerOptions options = {});

  std::string name() const override { return "PGExplainer"; }

  /// Trains the shared mask network on the label group's graphs. Must be
  /// called before Explain.
  Status Fit(const GraphDatabase& db, int label, int max_graphs = 16);

  /// Masks `g` with the trained network and harvests the top edges.
  Result<ExplanationSubgraph> Explain(const Graph& g, int graph_index,
                                      int label, int max_nodes) override;

  bool trained() const { return trained_; }

 private:
  /// Mask logits for every edge of `g` from the current MLP.
  std::vector<float> EdgeLogits(const Graph& g, const Matrix& embeddings) const;

  const GcnModel* model_;
  PgExplainerOptions options_;
  DenseLayer mlp1_;  // (2*emb_dim) -> hidden
  DenseLayer mlp2_;  // hidden -> 1
  bool trained_ = false;
};

}  // namespace gvex

#endif  // GVEX_BASELINES_PG_EXPLAINER_H_
