// GStarX [Zhang et al., NeurIPS'22] re-implementation: structure-aware node
// importance via cooperative-game values estimated over *connected*
// coalitions (the HN-value's locality), then a top-k induced explanation.
// Simplification (DESIGN.md): the HN value is estimated by Monte-Carlo
// sampling of connected coalitions grown by random BFS, rather than the
// exact recursive computation.

#ifndef GVEX_BASELINES_GSTARX_H_
#define GVEX_BASELINES_GSTARX_H_

#include "baselines/explainer.h"
#include "util/rng.h"

namespace gvex {

/// Sampling knobs.
struct GStarXOptions {
  int coalition_samples = 40;
  int max_coalition_size = 10;
  uint64_t seed = 31;
};

/// Structure-aware cooperative-game explainer.
class GStarX : public Explainer {
 public:
  explicit GStarX(const GnnClassifier* model, GStarXOptions options = {});

  std::string name() const override { return "GStarX"; }

  Result<ExplanationSubgraph> Explain(const Graph& g, int graph_index,
                                      int label, int max_nodes) override;

 private:
  const GnnClassifier* model_;
  GStarXOptions options_;
};

}  // namespace gvex

#endif  // GVEX_BASELINES_GSTARX_H_
