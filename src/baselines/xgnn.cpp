#include "baselines/xgnn.h"

#include <algorithm>
#include <set>

namespace gvex {

Xgnn::Xgnn(const GnnClassifier* model, const GraphDatabase* reference_db,
           XgnnOptions options)
    : model_(model), db_(reference_db), options_(options) {
  for (int i = 0; i < db_->size(); ++i) {
    const Graph& g = db_->graph(i);
    feature_dim_ = std::max(feature_dim_, g.feature_dim());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      num_types_ = std::max(num_types_, g.node_type(v) + 1);
    }
  }
}

Status Xgnn::Encode(Graph* g) const {
  if (feature_dim_ >= num_types_) {
    // One-hot over types padded to the model's input width.
    Matrix x(g->num_nodes(), feature_dim_);
    for (NodeId v = 0; v < g->num_nodes(); ++v) {
      const int t = g->node_type(v);
      if (t >= 0 && t < feature_dim_) x.at(v, t) = 1.0f;
    }
    return g->SetFeatures(std::move(x));
  }
  return g->SetOneHotFeaturesFromTypes(num_types_);
}

Result<Xgnn::Prototype> Xgnn::Generate(int label) const {
  if (db_->empty()) return Status::InvalidArgument("empty reference db");
  if (num_types_ <= 0) return Status::InvalidArgument("no node types");

  // Edge vocabulary from the reference data: which type pairs may bond.
  std::set<std::pair<int, int>> allowed;
  for (int i = 0; i < db_->size(); ++i) {
    const Graph& g = db_->graph(i);
    for (const Edge& e : g.edges()) {
      int a = g.node_type(e.u);
      int b = g.node_type(e.v);
      allowed.insert({std::min(a, b), std::max(a, b)});
    }
  }

  // Seed: the single-node graph with the highest P(label).
  Graph best;
  double best_p = -1.0;
  for (int t = 0; t < num_types_; ++t) {
    Graph g;
    g.AddNode(t);
    GVEX_RETURN_NOT_OK(Encode(&g));
    const double p = model_->ProbaOf(g, label);
    if (p > best_p) {
      best_p = p;
      best = std::move(g);
    }
  }

  // Greedy edits: add a typed node attached to an existing node, or close an
  // edge between existing nodes; keep the edit with the largest gain.
  for (;;) {
    Graph best_edit;
    double best_edit_p = best_p + options_.min_gain;
    bool found = false;
    if (best.num_nodes() < options_.max_nodes) {
      for (NodeId anchor = 0; anchor < best.num_nodes(); ++anchor) {
        for (int t = 0; t < num_types_; ++t) {
          const int a = best.node_type(anchor);
          if (!allowed.count({std::min(a, t), std::max(a, t)})) continue;
          Graph cand = best;
          NodeId nv = cand.AddNode(t);
          if (!cand.AddEdge(anchor, nv).ok()) continue;
          if (!Encode(&cand).ok()) continue;
          const double p = model_->ProbaOf(cand, label);
          if (p >= best_edit_p) {
            best_edit_p = p;
            best_edit = std::move(cand);
            found = true;
          }
        }
      }
    }
    for (NodeId u = 0; u < best.num_nodes(); ++u) {
      for (NodeId v = u + 1; v < best.num_nodes(); ++v) {
        if (best.HasEdge(u, v)) continue;
        const int a = best.node_type(u);
        const int b = best.node_type(v);
        if (!allowed.count({std::min(a, b), std::max(a, b)})) continue;
        Graph cand = best;
        if (!cand.AddEdge(u, v).ok()) continue;
        if (!Encode(&cand).ok()) continue;
        const double p = model_->ProbaOf(cand, label);
        if (p >= best_edit_p) {
          best_edit_p = p;
          best_edit = std::move(cand);
          found = true;
        }
      }
    }
    if (!found) break;
    best = std::move(best_edit);
    best_p = best_edit_p;
  }

  auto pattern = Pattern::Create(std::move(best));
  if (!pattern.ok()) return pattern.status();
  Prototype proto;
  proto.pattern = std::move(pattern).value();
  proto.probability = best_p;
  return proto;
}

}  // namespace gvex
