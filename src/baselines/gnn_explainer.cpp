#include "baselines/gnn_explainer.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gnn/loss.h"
#include "graph/subgraph.h"
#include "la/matrix_ops.h"

namespace gvex {

namespace {
inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

GnnExplainer::GnnExplainer(const GcnModel* model, GnnExplainerOptions options)
    : model_(model), options_(options) {}

Result<ExplanationSubgraph> GnnExplainer::Explain(const Graph& g,
                                                  int graph_index, int label,
                                                  int max_nodes) {
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  const int m = g.num_edges();
  // Mask logits, initialized mildly positive (edges start mostly "on").
  std::vector<float> logits_mask(static_cast<size_t>(m), 1.0f);
  std::vector<float> mask(static_cast<size_t>(m), 0.0f);

  Matrix x = g.features();
  if (x.empty()) x = Matrix(g.num_nodes(), model_->config().input_dim, 1.0f);

  // Degree normalization constants of the unmasked graph: S entry for edge
  // (u,v) is  mask_e * base_uv, so dL/dmask_e = base_uv * (dL/dS_uv +
  // dL/dS_vu) and dL/dlogit = dL/dmask * σ'(logit).
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t e = 0; e < mask.size(); ++e) {
      mask[e] = Sigmoid(logits_mask[e]);
    }
    SparseMatrix s = BuildMaskedOperator(g, mask);
    GcnModel::Trace trace = model_->ForwardWithOperator(s, x);
    // Maximize log P(label): minimize CE.
    Matrix dlogits;
    SoftmaxCrossEntropy(trace.logits, label, &dlogits);
    GcnModel::Gradients grads = model_->ZeroGradients();
    Matrix grad_s(g.num_nodes(), g.num_nodes());
    model_->Backward(trace, dlogits, &grads, nullptr, &grad_s);

    // Base (unmasked-normalization) coefficients.
    std::vector<float> deg(static_cast<size_t>(g.num_nodes()), 1.0f);
    for (const Edge& ed : g.edges()) {
      deg[static_cast<size_t>(ed.u)] += 1.0f;
      deg[static_cast<size_t>(ed.v)] += 1.0f;
    }
    for (size_t e = 0; e < mask.size(); ++e) {
      const Edge& ed = g.edges()[e];
      const float base =
          1.0f / std::sqrt(deg[static_cast<size_t>(ed.u)] *
                           deg[static_cast<size_t>(ed.v)]);
      float dmask = base * (grad_s.at(ed.u, ed.v) + grad_s.at(ed.v, ed.u));
      // Regularizers: λ1 d|σ|/dm + λ2 dH/dm.
      const float sm = mask[e];
      dmask += options_.l1_coeff;
      const float kEps = 1e-6f;
      dmask += options_.entropy_coeff *
               (-std::log(sm + kEps) + std::log(1.0f - sm + kEps));
      const float dlogit = dmask * sm * (1.0f - sm);
      logits_mask[e] -= options_.lr * dlogit;
    }
  }

  for (size_t e = 0; e < mask.size(); ++e) mask[e] = Sigmoid(logits_mask[e]);
  last_mask_ = mask;

  // Harvest nodes from the highest-mass edges until the budget is reached.
  std::vector<int> order(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return mask[static_cast<size_t>(a)] > mask[static_cast<size_t>(b)];
  });
  std::set<NodeId> nodes;
  for (int ei : order) {
    const Edge& ed = g.edges()[static_cast<size_t>(ei)];
    std::set<NodeId> tentative = nodes;
    tentative.insert(ed.u);
    tentative.insert(ed.v);
    if (static_cast<int>(tentative.size()) > max_nodes) {
      if (static_cast<int>(nodes.size()) >= max_nodes) break;
      continue;
    }
    nodes = std::move(tentative);
  }
  if (nodes.empty()) {
    // Degenerate (e.g. edgeless graph): take the single highest-degree node.
    NodeId best = 0;
    for (NodeId v = 1; v < g.num_nodes(); ++v) {
      if (g.degree(v) > g.degree(best)) best = v;
    }
    nodes.insert(best);
  }

  ExplanationSubgraph out;
  out.graph_index = graph_index;
  out.nodes.assign(nodes.begin(), nodes.end());
  auto sub = ExtractInducedSubgraph(g, out.nodes);
  if (!sub.ok()) return sub.status();
  out.subgraph = std::move(sub.value().graph);
  AnnotateVerification(*model_, g, &out, label);
  return out;
}

}  // namespace gvex
