// GCFExplainer [Huang et al., WSDM'23] re-implementation: global
// counterfactual reasoning. For each input graph of the label group it
// searches for a minimal node-deletion counterfactual (the smallest node set
// whose removal flips the prediction); the deleted set, induced back on the
// input graph, is the explanation. A summary step keeps a small set of
// representative counterfactuals covering the group (the paper's global
// objective). Simplification (DESIGN.md): edits are node deletions ordered
// by a greedy flip-probability heuristic rather than random-walk Teleport
// over the full edit graph.

#ifndef GVEX_BASELINES_GCF_EXPLAINER_H_
#define GVEX_BASELINES_GCF_EXPLAINER_H_

#include "baselines/explainer.h"

namespace gvex {

/// Search knobs.
struct GcfExplainerOptions {
  /// Greedy deletion rounds cap (also bounded by the graph size).
  int max_deletions = 64;
  /// Randomized restarts of the deletion search (the original explores a
  /// large edit space by random walk; restarts emulate that breadth). The
  /// best counterfactual (smallest deletion set, then lowest remaining
  /// probability) across restarts is returned.
  int restarts = 4;
  uint64_t seed = 37;
};

/// Counterfactual-deletion explainer.
class GcfExplainer : public Explainer {
 public:
  explicit GcfExplainer(const GnnClassifier* model,
                        GcfExplainerOptions options = {});

  std::string name() const override { return "GCFExplainer"; }

  Result<ExplanationSubgraph> Explain(const Graph& g, int graph_index,
                                      int label, int max_nodes) override;

 private:
  const GnnClassifier* model_;
  GcfExplainerOptions options_;
};

}  // namespace gvex

#endif  // GVEX_BASELINES_GCF_EXPLAINER_H_
