// SubgraphX [Yuan et al., ICML'21] re-implementation: Monte-Carlo tree
// search over node-pruning actions; leaf subgraphs are valued by a sampled
// Shapley approximation of their contribution to P(label). Simplifications
// vs. the original (documented in DESIGN.md): the coalition sampling uses
// l-hop neighbors as players like the paper, but with a fixed small sample
// count, and search tree expansion prunes one node at a time.

#ifndef GVEX_BASELINES_SUBGRAPHX_H_
#define GVEX_BASELINES_SUBGRAPHX_H_

#include "baselines/explainer.h"
#include "util/rng.h"

namespace gvex {

/// MCTS / Shapley knobs.
struct SubgraphXOptions {
  int mcts_iterations = 20;
  int shapley_samples = 10;
  float exploration_c = 5.0f;
  uint64_t seed = 29;
};

/// MCTS + Shapley subgraph explainer.
class SubgraphX : public Explainer {
 public:
  explicit SubgraphX(const GnnClassifier* model, SubgraphXOptions options = {});

  std::string name() const override { return "SubgraphX"; }

  Result<ExplanationSubgraph> Explain(const Graph& g, int graph_index,
                                      int label, int max_nodes) override;

 private:
  /// Sampled Shapley value of the node set `coalition` for `label`.
  double ShapleyValue(const Graph& g, const std::vector<NodeId>& coalition,
                      int label, Rng* rng) const;

  const GnnClassifier* model_;
  SubgraphXOptions options_;
};

}  // namespace gvex

#endif  // GVEX_BASELINES_SUBGRAPHX_H_
