// Common interface for instance-level subgraph explainers — the competitor
// methods of §6.1 are implemented against this so the benchmark harness can
// sweep methods uniformly. Every explainer receives the trained model as a
// black box (plus gradients where its original formulation needs them), a
// graph, the label to explain, and a node budget (the u_l analogue used for
// fair comparison).

#ifndef GVEX_BASELINES_EXPLAINER_H_
#define GVEX_BASELINES_EXPLAINER_H_

#include <string>
#include <vector>

#include "explain/explanation.h"
#include "gnn/gcn_model.h"
#include "graph/graph_database.h"
#include "util/status.h"

namespace gvex {

/// Abstract instance-level explainer.
class Explainer {
 public:
  virtual ~Explainer() = default;

  /// Display name used in benchmark tables (paper abbreviations: GE, SX, GX,
  /// GCF, AG, SG).
  virtual std::string name() const = 0;

  /// Produces an explanation subgraph with at most `max_nodes` nodes for
  /// `label` on `g`.
  virtual Result<ExplanationSubgraph> Explain(const Graph& g, int graph_index,
                                              int label, int max_nodes) = 0;

  /// Runs Explain over every graph of the (predicted) label group.
  /// Infeasible graphs are skipped.
  Result<std::vector<ExplanationSubgraph>> ExplainGroup(
      const GraphDatabase& db, int label, int max_nodes);
};

/// Fills the consistency/counterfactual flags of `ex` via EVerify.
void AnnotateVerification(const GnnClassifier& model, const Graph& g,
                          ExplanationSubgraph* ex, int label);

/// Utility shared by several baselines: expands `seed` greedily to a
/// connected node set of size `max_nodes` following `score` (higher first).
std::vector<NodeId> GrowConnectedSet(const Graph& g, NodeId seed,
                                     const std::vector<double>& score,
                                     int max_nodes);

}  // namespace gvex

#endif  // GVEX_BASELINES_EXPLAINER_H_
