// Sanity-floor baseline: a random connected subgraph of the requested size.
// Not in the paper's comparison, but invaluable for testing that real
// explainers beat chance.

#ifndef GVEX_BASELINES_RANDOM_EXPLAINER_H_
#define GVEX_BASELINES_RANDOM_EXPLAINER_H_

#include "baselines/explainer.h"
#include "util/rng.h"

namespace gvex {

/// Uniformly seeds a node and grows a random connected set.
class RandomExplainer : public Explainer {
 public:
  RandomExplainer(const GnnClassifier* model, uint64_t seed = 13);

  std::string name() const override { return "Random"; }

  Result<ExplanationSubgraph> Explain(const Graph& g, int graph_index,
                                      int label, int max_nodes) override;

 private:
  const GnnClassifier* model_;
  Rng rng_;
};

}  // namespace gvex

#endif  // GVEX_BASELINES_RANDOM_EXPLAINER_H_
