#include "data/malnet.h"

#include "data/motifs.h"
#include "util/rng.h"

namespace gvex {

namespace {

// Family-specific call motifs. Node type encodes a coarse function role
// (0 = plain, 1 = dispatcher, 2 = worker, 3 = syscall shim).
void PlantFamilyMotif(Graph* g, int family, Rng* rng) {
  switch (family % 5) {
    case 0: {
      // Dispatcher fan-out: one dispatcher calling many workers.
      NodeId d = g->AddNode(1);
      for (int i = 0; i < 8; ++i) {
        NodeId w = g->AddNode(2);
        (void)g->AddEdge(d, w);
      }
      break;
    }
    case 1: {
      // Long call chain ending in a syscall shim.
      std::vector<NodeId> chain;
      for (int i = 0; i < 7; ++i) {
        chain.push_back(g->AddNode(i == 6 ? 3 : 0));
        if (i > 0) (void)g->AddEdge(chain[static_cast<size_t>(i - 1)],
                                    chain.back());
      }
      break;
    }
    case 2: {
      // Mutual recursion ring of workers.
      std::vector<NodeId> ring;
      for (int i = 0; i < 5; ++i) ring.push_back(g->AddNode(2));
      for (int i = 0; i < 5; ++i) {
        (void)g->AddEdge(ring[static_cast<size_t>(i)],
                         ring[static_cast<size_t>((i + 1) % 5)]);
      }
      break;
    }
    case 3: {
      // Double dispatcher: two dispatchers sharing workers.
      NodeId d1 = g->AddNode(1);
      NodeId d2 = g->AddNode(1);
      for (int i = 0; i < 5; ++i) {
        NodeId w = g->AddNode(2);
        (void)g->AddEdge(d1, w);
        (void)g->AddEdge(d2, w);
      }
      break;
    }
    case 4: {
      // Syscall shim farm: several shims called by plain functions.
      for (int i = 0; i < 4; ++i) {
        NodeId f = g->AddNode(0);
        NodeId s = g->AddNode(3);
        (void)g->AddEdge(f, s);
      }
      break;
    }
  }
  (void)rng;
}

Graph MakeCallGraph(int family, const MalnetOptions& opt, Rng* rng) {
  Graph g(/*directed=*/true);
  PlantFamilyMotif(&g, family, rng);
  const int target =
      static_cast<int>(rng->NextInt(opt.min_functions, opt.max_functions));
  while (g.num_nodes() < target) {
    NodeId f = g.AddNode(0);
    // New functions call 1-3 existing ones.
    const int calls = static_cast<int>(rng->NextInt(1, 3));
    for (int c = 0; c < calls; ++c) {
      NodeId t = static_cast<NodeId>(
          rng->NextUint(static_cast<uint64_t>(g.num_nodes() - 1)));
      if (t != f) (void)g.AddEdge(f, t);
    }
  }
  (void)g.SetOneHotFeaturesFromTypes(4);
  return g;
}

}  // namespace

GraphDatabase GenerateMalnet(const MalnetOptions& options) {
  Rng rng(options.seed);
  GraphDatabase db;
  for (int i = 0; i < options.num_graphs; ++i) {
    const int family = i % options.num_classes;
    db.Add(MakeCallGraph(family, options, &rng), family);
  }
  return db;
}

}  // namespace gvex
