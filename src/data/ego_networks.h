// Node-classification support (Table 1: GVEX handles GC and NC). Following
// the paper's PRODUCTS protocol (§6.2), a node-classification task over one
// large graph is converted to graph classification: sample labeled center
// nodes, extract their h-hop ego networks, and label each subgraph with its
// center's class. Explanation views over the resulting database explain the
// node classifier's behaviour per class.

#ifndef GVEX_DATA_EGO_NETWORKS_H_
#define GVEX_DATA_EGO_NETWORKS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_database.h"
#include "util/status.h"

namespace gvex {

/// Extraction options.
struct EgoNetworkOptions {
  int hops = 2;               // ego-network radius (match the GNN depth)
  int max_networks = 200;     // total sample budget
  int max_nodes_per_ego = 0;  // 0 = unbounded; else BFS-truncate
  uint64_t seed = 808;
};

/// Builds a graph-classification database from (graph, per-node labels).
/// Sampling is class-balanced up to availability. `node_labels` must have
/// one entry per node; negative labels mark unlabeled nodes (skipped).
Result<GraphDatabase> BuildEgoNetworkDatabase(
    const Graph& g, const std::vector<int>& node_labels,
    const EgoNetworkOptions& options = {});

}  // namespace gvex

#endif  // GVEX_DATA_EGO_NETWORKS_H_
