// Shared motif builders for the synthetic dataset generators. Each helper
// appends a motif to a graph under construction and returns the ids of the
// motif nodes so generators can wire them into the base structure.
//
// These motifs are the ground-truth explanation structures: nitro groups and
// carbon rings for the molecule datasets (the paper's toxicophore story,
// Figs. 1/3/10), stars and bicliques for the social dataset (Fig. 11), and
// house/cycle motifs for SYNTHETIC (the GNNExplainer-style generator).

#ifndef GVEX_DATA_MOTIFS_H_
#define GVEX_DATA_MOTIFS_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gvex {

/// Atom type ids used by the molecule generators (14 types like MUT).
enum AtomType : int {
  kCarbon = 0,
  kNitrogen = 1,
  kOxygen = 2,
  kHydrogen = 3,
  kChlorine = 4,
  kFluorine = 5,
  kSulfur = 6,
  kPhosphorus = 7,
  kBromine = 8,
  kIodine = 9,
  kSodium = 10,
  kPotassium = 11,
  kLithium = 12,
  kCalcium = 13,
};
inline constexpr int kNumAtomTypes = 14;

/// Display names for atom types (examples / case studies).
const std::vector<std::string>& AtomVocab();

/// Adds a ring of `size` nodes of `node_type`; returns the ring node ids.
std::vector<NodeId> AddRing(Graph* g, int size, int node_type,
                            int edge_type = 0);

/// Adds a simple path of `size` nodes of `node_type`; returns its ids.
std::vector<NodeId> AddPath(Graph* g, int size, int node_type,
                            int edge_type = 0);

/// Adds a nitro group (N bonded to two O) attached to `anchor`; returns
/// {n, o1, o2}.
std::vector<NodeId> AddNitroGroup(Graph* g, NodeId anchor);

/// Adds an amine group (N bonded to two H) attached to `anchor`.
std::vector<NodeId> AddAmineGroup(Graph* g, NodeId anchor);

/// Adds a hydroxyl group (single O with H) attached to `anchor`.
std::vector<NodeId> AddHydroxylGroup(Graph* g, NodeId anchor);

/// Adds a star: one hub of `hub_type` with `leaves` leaf nodes of
/// `leaf_type`; returns {hub, leaf...}.
std::vector<NodeId> AddStar(Graph* g, int leaves, int hub_type,
                            int leaf_type);

/// Adds a complete bipartite K_{a,b}; returns the a-side then b-side ids.
std::vector<NodeId> AddBiclique(Graph* g, int a, int b, int a_type,
                                int b_type);

/// Adds the 5-node "house" motif (square + roof) of `node_type`.
std::vector<NodeId> AddHouse(Graph* g, int node_type);

/// Adds a cycle motif of length `len`.
std::vector<NodeId> AddCycleMotif(Graph* g, int len, int node_type);

/// Connects `node` to a uniformly random existing node (avoiding self loops
/// and duplicates); used to attach motifs to base graphs.
void AttachRandomly(Graph* g, NodeId node, Rng* rng);

/// Number of degree bins used by SetDegreeBinFeatures.
inline constexpr int kDegreeBins = 8;

/// Installs one-hot binned-degree features (bins 1,2,3,4-5,6-8,9-12,13-20,
/// 21+) — the standard default for featureless datasets like REDDIT-BINARY.
/// A 1-dim constant/scalar feature would make every GCN embedding a scalar
/// multiple of one vector (rank-1), leaving graph classification unlearnable.
void SetDegreeBinFeatures(Graph* g);

}  // namespace gvex

#endif  // GVEX_DATA_MOTIFS_H_
