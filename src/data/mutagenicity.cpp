#include "data/mutagenicity.h"

#include "data/motifs.h"

namespace gvex {

namespace {

Graph MakeMolecule(bool mutagen, const MutagenicityOptions& opt, Rng* rng) {
  Graph g;
  // Carbon ring backbone: 1-3 rings chained together.
  const int rings = static_cast<int>(
      rng->NextInt(opt.min_rings, opt.max_rings));
  std::vector<NodeId> anchors;
  NodeId prev_ring_node = -1;
  for (int r = 0; r < rings; ++r) {
    std::vector<NodeId> ring = AddRing(&g, opt.ring_size, kCarbon);
    if (prev_ring_node >= 0) {
      (void)g.AddEdge(prev_ring_node, ring[0]);
    }
    prev_ring_node = ring[static_cast<size_t>(opt.ring_size / 2)];
    for (NodeId v : ring) anchors.push_back(v);
  }

  // Benign decorations drawn from the SAME distribution for both classes, so
  // that the planted toxicophore is the only class-separating signal (the
  // ground-truth-explainability construction: a classifier cannot latch onto
  // the absence of benign groups).
  const int decos = static_cast<int>(rng->NextInt(1, 3));
  for (int i = 0; i < decos; ++i) {
    NodeId anchor = anchors[static_cast<size_t>(
        rng->NextUint(static_cast<uint64_t>(anchors.size())))];
    if (rng->NextBool(0.5)) {
      AddHydroxylGroup(&g, anchor);
    } else {
      // Methyl-ish: one carbon with a hydrogen.
      NodeId c = g.AddNode(kCarbon);
      (void)g.AddEdge(anchor, c);
      NodeId h = g.AddNode(kHydrogen);
      (void)g.AddEdge(c, h);
    }
  }
  if (mutagen) {
    // Plant the toxicophore: one nitro group (occasionally two).
    const int nitros = rng->NextBool(0.25) ? 2 : 1;
    for (int i = 0; i < nitros; ++i) {
      NodeId anchor = anchors[static_cast<size_t>(
          rng->NextUint(static_cast<uint64_t>(anchors.size())))];
      AddNitroGroup(&g, anchor);
    }
  }

  // Hydrogens on a few ring carbons (both classes).
  const int hydrogens = static_cast<int>(rng->NextInt(2, 5));
  for (int i = 0; i < hydrogens; ++i) {
    NodeId anchor = anchors[static_cast<size_t>(
        rng->NextUint(static_cast<uint64_t>(anchors.size())))];
    NodeId h = g.AddNode(kHydrogen);
    (void)g.AddEdge(anchor, h);
  }
  // Occasional halogen (both classes — a non-discriminative distractor).
  if (rng->NextBool(0.4)) {
    NodeId anchor = anchors[static_cast<size_t>(
        rng->NextUint(static_cast<uint64_t>(anchors.size())))];
    NodeId cl = g.AddNode(rng->NextBool(0.5) ? kChlorine : kFluorine);
    (void)g.AddEdge(anchor, cl);
  }

  (void)g.SetOneHotFeaturesFromTypes(kNumAtomTypes);
  return g;
}

}  // namespace

GraphDatabase GenerateMutagenicity(const MutagenicityOptions& options) {
  Rng rng(options.seed);
  GraphDatabase db;
  for (int i = 0; i < options.num_graphs; ++i) {
    const bool mutagen = i % 2 == 1;
    db.Add(MakeMolecule(mutagen, options, &rng), mutagen ? 1 : 0);
  }
  return db;
}

}  // namespace gvex
