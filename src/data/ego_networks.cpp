#include "data/ego_networks.h"

#include <algorithm>
#include <map>
#include <queue>

#include "graph/subgraph.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace gvex {

namespace {

// BFS-truncated neighborhood: collects nodes by hop rings until either the
// radius or the node cap is reached (center first, then ring by ring).
std::vector<NodeId> TruncatedNeighborhood(const Graph& g, NodeId center,
                                          int hops, int max_nodes) {
  std::vector<int> dist(static_cast<size_t>(g.num_nodes()), -1);
  std::queue<NodeId> q;
  dist[static_cast<size_t>(center)] = 0;
  q.push(center);
  std::vector<NodeId> nodes{center};
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    if (dist[static_cast<size_t>(u)] >= hops) continue;
    for (const Neighbor& nb : g.neighbors(u)) {
      if (dist[static_cast<size_t>(nb.node)] != -1) continue;
      if (max_nodes > 0 && static_cast<int>(nodes.size()) >= max_nodes) {
        return nodes;
      }
      dist[static_cast<size_t>(nb.node)] = dist[static_cast<size_t>(u)] + 1;
      nodes.push_back(nb.node);
      q.push(nb.node);
    }
  }
  return nodes;
}

}  // namespace

Result<GraphDatabase> BuildEgoNetworkDatabase(
    const Graph& g, const std::vector<int>& node_labels,
    const EgoNetworkOptions& options) {
  if (node_labels.size() != static_cast<size_t>(g.num_nodes())) {
    return Status::InvalidArgument(
        StrFormat("got %zu labels for %d nodes", node_labels.size(),
                  g.num_nodes()));
  }
  if (options.hops < 0 || options.max_networks <= 0) {
    return Status::InvalidArgument("hops must be >= 0 and budget positive");
  }
  // Bucket labeled nodes per class.
  std::map<int, std::vector<NodeId>> per_class;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (node_labels[static_cast<size_t>(v)] >= 0) {
      per_class[node_labels[static_cast<size_t>(v)]].push_back(v);
    }
  }
  if (per_class.empty()) {
    return Status::InvalidArgument("no labeled nodes");
  }
  Rng rng(options.seed);
  for (auto& [label, nodes] : per_class) rng.Shuffle(&nodes);

  // Round-robin class-balanced sampling.
  GraphDatabase db;
  std::map<int, size_t> cursor;
  int produced = 0;
  bool progress = true;
  while (produced < options.max_networks && progress) {
    progress = false;
    for (auto& [label, nodes] : per_class) {
      size_t& at = cursor[label];
      if (at >= nodes.size() || produced >= options.max_networks) continue;
      NodeId center = nodes[at++];
      std::vector<NodeId> ego = TruncatedNeighborhood(
          g, center, options.hops, options.max_nodes_per_ego);
      auto sub = ExtractInducedSubgraph(g, ego);
      if (!sub.ok()) return sub.status();
      db.Add(std::move(sub.value().graph), label);
      ++produced;
      progress = true;
    }
  }
  return db;
}

}  // namespace gvex
