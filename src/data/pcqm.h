// PCQM4Mv2-like quantum-chemistry generator (Table 3: ~15 nodes, ~31 edges,
// 9 node features, 3 classes, millions of graphs). Used as the scalability
// workload (Fig. 9d): many small molecules whose class is determined by the
// dominant functional decoration. The count is a parameter; benches sweep it.

#ifndef GVEX_DATA_PCQM_H_
#define GVEX_DATA_PCQM_H_

#include "graph/graph_database.h"

namespace gvex {

/// Generator options.
struct PcqmOptions {
  int num_graphs = 300;
  uint64_t seed = 505;
};

/// Generates the dataset (9 one-hot features from 9 atom types).
GraphDatabase GeneratePcqm(const PcqmOptions& options = {});

}  // namespace gvex

#endif  // GVEX_DATA_PCQM_H_
