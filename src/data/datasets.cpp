#include "data/datasets.h"

#include "data/ba_motif.h"
#include "data/enzymes.h"
#include "data/malnet.h"
#include "data/motifs.h"
#include "data/mutagenicity.h"
#include "data/pcqm.h"
#include "data/products.h"
#include "data/reddit.h"

namespace gvex {

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec> kSpecs = {
      {DatasetId::kMutagenicity, "MUTAGENICITY", "MUT", kNumAtomTypes, 2},
      {DatasetId::kReddit, "REDDIT-BINARY", "RED", kDegreeBins, 2},
      {DatasetId::kEnzymes, "ENZYMES", "ENZ", 3, 6},
      {DatasetId::kMalnet, "MALNET-TINY", "MAL", 4, 5},
      {DatasetId::kPcqm, "PCQM4Mv2", "PCQ", 9, 3},
      {DatasetId::kProducts, "PRODUCTS", "PRO", 8, 8},
      {DatasetId::kSynthetic, "SYNTHETIC", "SYN", kDegreeBins, 2},
  };
  return kSpecs;
}

const DatasetSpec& SpecFor(DatasetId id) {
  for (const auto& spec : AllDatasets()) {
    if (spec.id == id) return spec;
  }
  return AllDatasets().front();  // unreachable for valid ids
}

GraphDatabase MakeDataset(DatasetId id, const DatasetScale& scale) {
  switch (id) {
    case DatasetId::kMutagenicity: {
      MutagenicityOptions opt;
      if (scale.num_graphs > 0) opt.num_graphs = scale.num_graphs;
      if (scale.seed != 0) opt.seed = scale.seed;
      return GenerateMutagenicity(opt);
    }
    case DatasetId::kReddit: {
      RedditOptions opt;
      if (scale.num_graphs > 0) opt.num_graphs = scale.num_graphs;
      if (scale.seed != 0) opt.seed = scale.seed;
      return GenerateReddit(opt);
    }
    case DatasetId::kEnzymes: {
      EnzymesOptions opt;
      if (scale.num_graphs > 0) opt.num_graphs = scale.num_graphs;
      if (scale.seed != 0) opt.seed = scale.seed;
      return GenerateEnzymes(opt);
    }
    case DatasetId::kMalnet: {
      MalnetOptions opt;
      if (scale.num_graphs > 0) opt.num_graphs = scale.num_graphs;
      if (scale.seed != 0) opt.seed = scale.seed;
      return GenerateMalnet(opt);
    }
    case DatasetId::kPcqm: {
      PcqmOptions opt;
      if (scale.num_graphs > 0) opt.num_graphs = scale.num_graphs;
      if (scale.seed != 0) opt.seed = scale.seed;
      return GeneratePcqm(opt);
    }
    case DatasetId::kProducts: {
      ProductsOptions opt;
      if (scale.num_graphs > 0) opt.num_graphs = scale.num_graphs;
      if (scale.seed != 0) opt.seed = scale.seed;
      return GenerateProducts(opt);
    }
    case DatasetId::kSynthetic: {
      BaMotifOptions opt;
      if (scale.num_graphs > 0) opt.num_graphs = scale.num_graphs;
      if (scale.seed != 0) opt.seed = scale.seed;
      return GenerateBaMotif(opt);
    }
  }
  return GraphDatabase();
}

Result<DatasetId> DatasetFromAbbrev(const std::string& abbrev) {
  for (const auto& spec : AllDatasets()) {
    if (spec.abbrev == abbrev) return spec.id;
  }
  return Status::NotFound("unknown dataset abbreviation: " + abbrev);
}

}  // namespace gvex
