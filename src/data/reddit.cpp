#include "data/reddit.h"

#include <cmath>

#include "data/motifs.h"
#include "util/rng.h"

namespace gvex {

namespace {

Graph MakeThread(bool qa, const RedditOptions& opt, Rng* rng) {
  Graph g;
  const int target_users =
      static_cast<int>(rng->NextInt(opt.min_users, opt.max_users));

  if (qa) {
    // Q&A: experts × questioners biclique core.
    const int experts = static_cast<int>(rng->NextInt(2, 4));
    const int questioners = static_cast<int>(rng->NextInt(6, 12));
    AddBiclique(&g, experts, questioners, 0, 0);
  } else {
    // Discussion: 2-4 hubs with many leaves.
    const int hubs = static_cast<int>(rng->NextInt(2, 4));
    for (int h = 0; h < hubs; ++h) {
      const int leaves = static_cast<int>(rng->NextInt(6, 14));
      std::vector<NodeId> star = AddStar(&g, leaves, 0, 0);
      if (h > 0) AttachRandomly(&g, star[0], rng);
    }
  }

  // Background chatter: random users replying to random earlier posts
  // (preferential-ish attachment keeps it thread-shaped).
  while (g.num_nodes() < target_users) {
    NodeId u = g.AddNode(0);
    NodeId t = static_cast<NodeId>(
        rng->NextUint(static_cast<uint64_t>(g.num_nodes() - 1)));
    (void)g.AddEdge(u, t);
    if (rng->NextBool(0.15)) AttachRandomly(&g, u, rng);
  }

  // The dataset has no node features; following standard practice for
  // REDDIT-BINARY (e.g. the GIN evaluation protocol), the default feature is
  // the binned node degree, which lets a GCN see the star/biclique structure.
  SetDegreeBinFeatures(&g);
  return g;
}

}  // namespace

GraphDatabase GenerateReddit(const RedditOptions& options) {
  Rng rng(options.seed);
  GraphDatabase db;
  for (int i = 0; i < options.num_graphs; ++i) {
    const bool qa = i % 2 == 1;
    db.Add(MakeThread(qa, options, &rng), qa ? 1 : 0);
  }
  return db;
}

}  // namespace gvex
