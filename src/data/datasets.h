// Dataset registry: the seven benchmark datasets of Table 3, each backed by
// a synthetic generator (see DESIGN.md for the substitution rationale), plus
// the metadata the benchmark harness needs (name, feature dim, classes).

#ifndef GVEX_DATA_DATASETS_H_
#define GVEX_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph_database.h"
#include "util/status.h"

namespace gvex {

/// The benchmark datasets (Table 3 order).
enum class DatasetId {
  kMutagenicity,
  kReddit,
  kEnzymes,
  kMalnet,
  kPcqm,
  kProducts,
  kSynthetic,
};

/// Static dataset metadata.
struct DatasetSpec {
  DatasetId id;
  std::string name;     // full name, e.g. "MUTAGENICITY"
  std::string abbrev;   // paper abbreviation, e.g. "MUT"
  int feature_dim;      // input dim fed to the GCN
  int num_classes;
};

/// All dataset specs, in Table 3 order.
const std::vector<DatasetSpec>& AllDatasets();

/// Spec lookup by id.
const DatasetSpec& SpecFor(DatasetId id);

/// Uniform scale knob for generators: number of graphs (0 = default) and a
/// seed override.
struct DatasetScale {
  int num_graphs = 0;
  uint64_t seed = 0;  // 0 = generator default
};

/// Instantiates a dataset.
GraphDatabase MakeDataset(DatasetId id, const DatasetScale& scale = {});

/// Parses "MUT"/"RED"/... into an id.
Result<DatasetId> DatasetFromAbbrev(const std::string& abbrev);

}  // namespace gvex

#endif  // GVEX_DATA_DATASETS_H_
