// MALNET-TINY-like function-call-graph generator (Table 3: large directed
// graphs, no features, 5 classes). Each malware family plants a
// characteristic inter-procedural calling motif (dispatch fans, call chains,
// mutual-recursion cliques) inside a random call-graph background. Sizes are
// scaled down from the real 1.5k-node average (see DESIGN.md substitution
// note); structure and the "big graphs stress explainers" role are kept.

#ifndef GVEX_DATA_MALNET_H_
#define GVEX_DATA_MALNET_H_

#include "graph/graph_database.h"

namespace gvex {

/// Generator options.
struct MalnetOptions {
  int num_graphs = 30;  // 6 per class
  uint64_t seed = 404;
  int num_classes = 5;
  int min_functions = 120;
  int max_functions = 260;
};

/// Generates the dataset (directed graphs, constant default feature).
GraphDatabase GenerateMalnet(const MalnetOptions& options = {});

}  // namespace gvex

#endif  // GVEX_DATA_MALNET_H_
