#include "data/pcqm.h"

#include "data/motifs.h"
#include "util/rng.h"

namespace gvex {

namespace {

// 9 atom types (subset of the molecule vocabulary, remapped to [0,9)).
constexpr int kNumPcqTypes = 9;

Graph MakeSmallMolecule(int cls, Rng* rng) {
  Graph g;
  // Small backbone: ring or chain of carbons (type 0).
  std::vector<NodeId> backbone = rng->NextBool(0.5)
                                     ? AddRing(&g, 5, 0)
                                     : AddPath(&g, 6, 0);
  // Class-determining decoration.
  NodeId anchor = backbone[static_cast<size_t>(
      rng->NextUint(static_cast<uint64_t>(backbone.size())))];
  switch (cls % 3) {
    case 0: {
      // Carbonyl-like: O (type 1) double-decoration.
      NodeId o = g.AddNode(1);
      (void)g.AddEdge(anchor, o);
      break;
    }
    case 1: {
      // Nitrogen pair (types 2,2).
      NodeId n1 = g.AddNode(2);
      NodeId n2 = g.AddNode(2);
      (void)g.AddEdge(anchor, n1);
      (void)g.AddEdge(n1, n2);
      break;
    }
    case 2: {
      // Halogen trio (types 3,4,5).
      NodeId a = g.AddNode(3);
      NodeId b = g.AddNode(4);
      NodeId c = g.AddNode(5);
      (void)g.AddEdge(anchor, a);
      (void)g.AddEdge(anchor, b);
      (void)g.AddEdge(anchor, c);
      break;
    }
  }
  // A couple of random peripheral atoms from the remaining types.
  const int extras = static_cast<int>(rng->NextInt(1, 3));
  for (int i = 0; i < extras; ++i) {
    NodeId v = g.AddNode(static_cast<int>(rng->NextInt(6, kNumPcqTypes - 1)));
    NodeId t = static_cast<NodeId>(
        rng->NextUint(static_cast<uint64_t>(g.num_nodes() - 1)));
    if (t != v) (void)g.AddEdge(v, t);
  }
  (void)g.SetOneHotFeaturesFromTypes(kNumPcqTypes);
  return g;
}

}  // namespace

GraphDatabase GeneratePcqm(const PcqmOptions& options) {
  Rng rng(options.seed);
  GraphDatabase db;
  for (int i = 0; i < options.num_graphs; ++i) {
    const int cls = i % 3;
    db.Add(MakeSmallMolecule(cls, &rng), cls);
  }
  return db;
}

}  // namespace gvex
