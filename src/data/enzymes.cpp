#include "data/enzymes.h"

#include "data/motifs.h"
#include "util/rng.h"

namespace gvex {

namespace {

// Three structural element types (helix / sheet / turn).
constexpr int kHelix = 0;
constexpr int kSheet = 1;
constexpr int kTurn = 2;

// Class-specific motif: distinct small structures over typed nodes.
void PlantClassMotif(Graph* g, int cls, Rng* rng) {
  switch (cls % 6) {
    case 0:
      AddRing(g, 4, kHelix);
      break;
    case 1:
      AddRing(g, 5, kSheet);
      break;
    case 2: {
      // Alternating helix-sheet path.
      std::vector<NodeId> p;
      for (int i = 0; i < 5; ++i) {
        p.push_back(g->AddNode(i % 2 == 0 ? kHelix : kSheet));
        if (i > 0) (void)g->AddEdge(p[static_cast<size_t>(i - 1)], p.back());
      }
      break;
    }
    case 3:
      AddStar(g, 5, kTurn, kHelix);
      break;
    case 4:
      AddStar(g, 5, kTurn, kSheet);
      break;
    case 5: {
      // Triangle of turns with sheet pendant.
      std::vector<NodeId> tri = AddRing(g, 3, kTurn);
      NodeId s = g->AddNode(kSheet);
      (void)g->AddEdge(tri[0], s);
      break;
    }
  }
  (void)rng;
}

Graph MakeEnzyme(int cls, const EnzymesOptions& opt, Rng* rng) {
  Graph g;
  PlantClassMotif(&g, cls, rng);
  const int target =
      static_cast<int>(rng->NextInt(opt.min_nodes, opt.max_nodes));
  while (g.num_nodes() < target) {
    NodeId v = g.AddNode(static_cast<int>(rng->NextInt(0, 2)));
    NodeId t = static_cast<NodeId>(
        rng->NextUint(static_cast<uint64_t>(g.num_nodes() - 1)));
    (void)g.AddEdge(v, t);
    if (rng->NextBool(0.5)) AttachRandomly(&g, v, rng);
  }
  (void)g.SetOneHotFeaturesFromTypes(3);
  return g;
}

}  // namespace

GraphDatabase GenerateEnzymes(const EnzymesOptions& options) {
  Rng rng(options.seed);
  GraphDatabase db;
  for (int i = 0; i < options.num_graphs; ++i) {
    const int cls = i % options.num_classes;
    db.Add(MakeEnzyme(cls, options, &rng), cls);
  }
  return db;
}

}  // namespace gvex
