// ENZYMES-like protein-interaction generator (Table 3: ~33 nodes, ~62 edges,
// 3 node features, 6 classes). Each enzyme class plants a characteristic
// secondary-structure motif (rings/paths/stars over the 3 structural element
// types) in a random background of interactions.

#ifndef GVEX_DATA_ENZYMES_H_
#define GVEX_DATA_ENZYMES_H_

#include "graph/graph_database.h"

namespace gvex {

/// Generator options.
struct EnzymesOptions {
  int num_graphs = 120;  // 20 per class
  uint64_t seed = 303;
  int num_classes = 6;
  int min_nodes = 22;
  int max_nodes = 40;
};

/// Generates the dataset (3 one-hot features from the 3 element types).
GraphDatabase GenerateEnzymes(const EnzymesOptions& options = {});

}  // namespace gvex

#endif  // GVEX_DATA_ENZYMES_H_
