#include "data/products.h"

#include "util/rng.h"

namespace gvex {

namespace {

Graph MakeCommunity(int category, const ProductsOptions& opt, Rng* rng) {
  Graph g;
  const int target =
      static_cast<int>(rng->NextInt(opt.min_products, opt.max_products));
  // Core community: products of the labelled category, densely co-purchased.
  const int core = target * 2 / 3;
  for (int i = 0; i < core; ++i) {
    NodeId v = g.AddNode(category);
    if (v == 0) continue;
    // Each new product co-purchased with 2-3 existing core products.
    const int links = static_cast<int>(rng->NextInt(2, 3));
    for (int l = 0; l < links; ++l) {
      NodeId t = static_cast<NodeId>(
          rng->NextUint(static_cast<uint64_t>(v)));
      (void)g.AddEdge(v, t);
    }
  }
  // Peripheral cross-category products, sparsely attached.
  while (g.num_nodes() < target) {
    int other = static_cast<int>(
        rng->NextUint(static_cast<uint64_t>(opt.num_categories)));
    NodeId v = g.AddNode(other);
    NodeId t = static_cast<NodeId>(
        rng->NextUint(static_cast<uint64_t>(g.num_nodes() - 1)));
    if (t != v) (void)g.AddEdge(v, t);
  }
  (void)g.SetOneHotFeaturesFromTypes(opt.num_categories);
  return g;
}

}  // namespace

GraphDatabase GenerateProducts(const ProductsOptions& options) {
  Rng rng(options.seed);
  GraphDatabase db;
  for (int i = 0; i < options.num_graphs; ++i) {
    const int category = i % options.num_categories;
    db.Add(MakeCommunity(category, options, &rng), category);
  }
  return db;
}

}  // namespace gvex
