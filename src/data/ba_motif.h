// SYNTHETIC (BA + motif) generator — the GNNExplainer-style benchmark the
// paper cites [62]: a Barabási–Albert base graph with HouseMotif (class 0)
// or CycleMotif (class 1) attachments. The paper's instance has ~0.4M nodes;
// the default here is laptop-scale with the same construction (DESIGN.md).

#ifndef GVEX_DATA_BA_MOTIF_H_
#define GVEX_DATA_BA_MOTIF_H_

#include "graph/graph_database.h"

namespace gvex {

/// Generator options.
struct BaMotifOptions {
  int num_graphs = 60;
  uint64_t seed = 707;
  int base_nodes = 40;
  int edges_per_node = 1;  // BA attachment parameter m
  int motifs_per_graph = 2;
};

/// Generates the dataset (constant default feature).
GraphDatabase GenerateBaMotif(const BaMotifOptions& options = {});

}  // namespace gvex

#endif  // GVEX_DATA_BA_MOTIF_H_
