#include "data/splits.h"

#include <numeric>

#include "util/rng.h"

namespace gvex {

Split MakeSplit(const GraphDatabase& db, double val_frac, double test_frac,
                uint64_t seed) {
  Split split;
  std::vector<int> order(static_cast<size_t>(db.size()));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);
  const int n = db.size();
  const int n_val = static_cast<int>(n * val_frac);
  const int n_test = static_cast<int>(n * test_frac);
  for (int i = 0; i < n; ++i) {
    if (i < n_val) {
      split.val.push_back(order[static_cast<size_t>(i)]);
    } else if (i < n_val + n_test) {
      split.test.push_back(order[static_cast<size_t>(i)]);
    } else {
      split.train.push_back(order[static_cast<size_t>(i)]);
    }
  }
  return split;
}

}  // namespace gvex
