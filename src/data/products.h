// PRODUCTS-like co-purchase generator. The paper samples ~400 subgraphs
// (~3000 nodes each) from the Amazon co-purchasing network and labels each
// subgraph by its center node's category. We simulate that with community
// subgraphs: each sample is a dense intra-category community plus
// cross-category noise, labelled by the dominant category. Node type = the
// product's category (a coarse stand-in for the 100 features).

#ifndef GVEX_DATA_PRODUCTS_H_
#define GVEX_DATA_PRODUCTS_H_

#include "graph/graph_database.h"

namespace gvex {

/// Generator options (defaults scaled down for bench runtime).
struct ProductsOptions {
  int num_graphs = 40;
  uint64_t seed = 606;
  int num_categories = 8;   // stands in for the 47 top-level categories
  int min_products = 80;
  int max_products = 200;
};

/// Generates the dataset (one-hot features from category types).
GraphDatabase GenerateProducts(const ProductsOptions& options = {});

}  // namespace gvex

#endif  // GVEX_DATA_PRODUCTS_H_
