// Train/validation/test splits (the paper uses 80/10/10 and explains the
// test set).

#ifndef GVEX_DATA_SPLITS_H_
#define GVEX_DATA_SPLITS_H_

#include <cstdint>
#include <vector>

#include "graph/graph_database.h"

namespace gvex {

/// Index partition of a database.
struct Split {
  std::vector<int> train;
  std::vector<int> val;
  std::vector<int> test;
};

/// Shuffled split with the given fractions (train gets the remainder).
Split MakeSplit(const GraphDatabase& db, double val_frac = 0.1,
                double test_frac = 0.1, uint64_t seed = 99);

}  // namespace gvex

#endif  // GVEX_DATA_SPLITS_H_
