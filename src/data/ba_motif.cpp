#include "data/ba_motif.h"

#include <cmath>

#include "data/motifs.h"
#include "util/rng.h"

namespace gvex {

namespace {

// Barabási–Albert preferential attachment: each new node connects to `m`
// existing nodes chosen proportionally to degree.
Graph MakeBaBase(int n, int m, Rng* rng) {
  Graph g;
  g.AddNode(0);
  g.AddNode(0);
  (void)g.AddEdge(0, 1);
  while (g.num_nodes() < n) {
    NodeId v = g.AddNode(0);
    for (int l = 0; l < m; ++l) {
      // Degree-proportional sampling via edge-endpoint sampling.
      const auto& edges = g.edges();
      NodeId target;
      if (edges.empty()) {
        target = 0;
      } else {
        const Edge& e = edges[static_cast<size_t>(
            rng->NextUint(static_cast<uint64_t>(edges.size())))];
        target = rng->NextBool(0.5) ? e.u : e.v;
      }
      if (target != v) (void)g.AddEdge(v, target);
    }
  }
  return g;
}

Graph MakeBaMotifGraph(bool cycle_class, const BaMotifOptions& opt,
                       Rng* rng) {
  Graph g = MakeBaBase(opt.base_nodes, opt.edges_per_node, rng);
  for (int k = 0; k < opt.motifs_per_graph; ++k) {
    std::vector<NodeId> motif = cycle_class ? AddCycleMotif(&g, 6, 0)
                                            : AddHouse(&g, 0);
    AttachRandomly(&g, motif[0], rng);
  }
  // Binned-degree default features (see reddit.cpp): motifs perturb the BA
  // degree profile, which a GCN over constant features cannot see.
  SetDegreeBinFeatures(&g);
  return g;
}

}  // namespace

GraphDatabase GenerateBaMotif(const BaMotifOptions& options) {
  Rng rng(options.seed);
  GraphDatabase db;
  for (int i = 0; i < options.num_graphs; ++i) {
    const bool cycle_class = i % 2 == 1;
    db.Add(MakeBaMotifGraph(cycle_class, options, &rng),
           cycle_class ? 1 : 0);
  }
  return db;
}

}  // namespace gvex
