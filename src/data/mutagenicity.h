// MUTAGENICITY-like molecule generator (Table 3: ~30 nodes, ~31 edges, 14
// one-hot node features, 2 classes). Mutagens (label 1) carry nitro and/or
// amine toxicophore groups on carbon rings; nonmutagens (label 0) carry
// benign hydroxyl/methyl decorations. The planted toxicophores are the
// ground-truth explanations the case studies recover.

#ifndef GVEX_DATA_MUTAGENICITY_H_
#define GVEX_DATA_MUTAGENICITY_H_

#include "graph/graph_database.h"
#include "util/rng.h"

namespace gvex {

/// Generator options.
struct MutagenicityOptions {
  int num_graphs = 120;
  uint64_t seed = 101;
  int min_rings = 1;
  int max_rings = 3;
  int ring_size = 6;
};

/// Generates the dataset (balanced classes, one-hot features installed).
GraphDatabase GenerateMutagenicity(const MutagenicityOptions& options = {});

}  // namespace gvex

#endif  // GVEX_DATA_MUTAGENICITY_H_
