#include "data/motifs.h"

namespace gvex {

const std::vector<std::string>& AtomVocab() {
  static const std::vector<std::string> kVocab = {
      "C", "N", "O", "H", "Cl", "F", "S", "P", "Br", "I", "Na", "K", "Li",
      "Ca"};
  return kVocab;
}

std::vector<NodeId> AddRing(Graph* g, int size, int node_type, int edge_type) {
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) nodes.push_back(g->AddNode(node_type));
  for (int i = 0; i < size; ++i) {
    (void)g->AddEdge(nodes[static_cast<size_t>(i)],
                     nodes[static_cast<size_t>((i + 1) % size)], edge_type);
  }
  return nodes;
}

std::vector<NodeId> AddPath(Graph* g, int size, int node_type, int edge_type) {
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) nodes.push_back(g->AddNode(node_type));
  for (int i = 0; i + 1 < size; ++i) {
    (void)g->AddEdge(nodes[static_cast<size_t>(i)],
                     nodes[static_cast<size_t>(i + 1)], edge_type);
  }
  return nodes;
}

std::vector<NodeId> AddNitroGroup(Graph* g, NodeId anchor) {
  NodeId n = g->AddNode(kNitrogen);
  NodeId o1 = g->AddNode(kOxygen);
  NodeId o2 = g->AddNode(kOxygen);
  (void)g->AddEdge(anchor, n);
  (void)g->AddEdge(n, o1);
  (void)g->AddEdge(n, o2);
  return {n, o1, o2};
}

std::vector<NodeId> AddAmineGroup(Graph* g, NodeId anchor) {
  NodeId n = g->AddNode(kNitrogen);
  NodeId h1 = g->AddNode(kHydrogen);
  NodeId h2 = g->AddNode(kHydrogen);
  (void)g->AddEdge(anchor, n);
  (void)g->AddEdge(n, h1);
  (void)g->AddEdge(n, h2);
  return {n, h1, h2};
}

std::vector<NodeId> AddHydroxylGroup(Graph* g, NodeId anchor) {
  NodeId o = g->AddNode(kOxygen);
  NodeId h = g->AddNode(kHydrogen);
  (void)g->AddEdge(anchor, o);
  (void)g->AddEdge(o, h);
  return {o, h};
}

std::vector<NodeId> AddStar(Graph* g, int leaves, int hub_type,
                            int leaf_type) {
  std::vector<NodeId> nodes;
  NodeId hub = g->AddNode(hub_type);
  nodes.push_back(hub);
  for (int i = 0; i < leaves; ++i) {
    NodeId leaf = g->AddNode(leaf_type);
    (void)g->AddEdge(hub, leaf);
    nodes.push_back(leaf);
  }
  return nodes;
}

std::vector<NodeId> AddBiclique(Graph* g, int a, int b, int a_type,
                                int b_type) {
  std::vector<NodeId> nodes;
  std::vector<NodeId> left;
  for (int i = 0; i < a; ++i) {
    left.push_back(g->AddNode(a_type));
    nodes.push_back(left.back());
  }
  for (int j = 0; j < b; ++j) {
    NodeId r = g->AddNode(b_type);
    nodes.push_back(r);
    for (NodeId l : left) (void)g->AddEdge(l, r);
  }
  return nodes;
}

std::vector<NodeId> AddHouse(Graph* g, int node_type) {
  // Square 0-1-2-3 plus roof node 4 on top of 0-1.
  std::vector<NodeId> v;
  for (int i = 0; i < 5; ++i) v.push_back(g->AddNode(node_type));
  (void)g->AddEdge(v[0], v[1]);
  (void)g->AddEdge(v[1], v[2]);
  (void)g->AddEdge(v[2], v[3]);
  (void)g->AddEdge(v[3], v[0]);
  (void)g->AddEdge(v[0], v[4]);
  (void)g->AddEdge(v[1], v[4]);
  return v;
}

std::vector<NodeId> AddCycleMotif(Graph* g, int len, int node_type) {
  return AddRing(g, len, node_type);
}

void SetDegreeBinFeatures(Graph* g) {
  Matrix x(g->num_nodes(), kDegreeBins);
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    const int d = g->degree(v);
    int bin;
    if (d <= 1) bin = 0;
    else if (d == 2) bin = 1;
    else if (d == 3) bin = 2;
    else if (d <= 5) bin = 3;
    else if (d <= 8) bin = 4;
    else if (d <= 12) bin = 5;
    else if (d <= 20) bin = 6;
    else bin = 7;
    x.at(v, bin) = 1.0f;
  }
  (void)g->SetFeatures(std::move(x));
}

void AttachRandomly(Graph* g, NodeId node, Rng* rng) {
  if (g->num_nodes() <= 1) return;
  for (int attempt = 0; attempt < 16; ++attempt) {
    NodeId other = static_cast<NodeId>(
        rng->NextUint(static_cast<uint64_t>(g->num_nodes())));
    if (other == node) continue;
    if (g->AddEdge(node, other).ok()) return;
  }
}

}  // namespace gvex
