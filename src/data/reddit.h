// REDDIT-BINARY-like thread generator (Table 3: ~430 nodes, ~996 edges, no
// node features, 2 classes). Online-discussion threads (label 0) are
// star-dominated: a few popular posts each answered by many strangers. Q&A
// threads (label 1) are biclique-dominated: a few experts answering many
// distinct questioners (Fig. 11's P61 star / P81 biclique motifs). Sizes are
// scaled down by default for bench runtime; the structure is preserved.

#ifndef GVEX_DATA_REDDIT_H_
#define GVEX_DATA_REDDIT_H_

#include "graph/graph_database.h"

namespace gvex {

/// Generator options.
struct RedditOptions {
  int num_graphs = 60;
  uint64_t seed = 202;
  int min_users = 40;
  int max_users = 90;
};

/// Generates the dataset (constant default feature; input_dim 1).
GraphDatabase GenerateReddit(const RedditOptions& options = {});

}  // namespace gvex

#endif  // GVEX_DATA_REDDIT_H_
