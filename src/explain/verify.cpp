#include "explain/verify.h"

#include "graph/subgraph.h"
#include "pattern/coverage.h"
#include "util/string_util.h"

namespace gvex {

Result<EVerifyResult> EVerify(const GnnClassifier& model, const Graph& g,
                              const std::vector<NodeId>& nodes, int label) {
  auto sub = ExtractInducedSubgraph(g, nodes);
  if (!sub.ok()) return sub.status();
  auto rest = RemoveNodes(g, nodes);
  if (!rest.ok()) return rest.status();
  EVerifyResult out;
  out.subgraph_label = model.Predict(sub.value().graph);
  out.remainder_label = model.Predict(rest.value().graph);
  out.consistent = out.subgraph_label == label;
  out.counterfactual = out.remainder_label != label;
  return out;
}

bool VpExtend(const GnnClassifier& model, const Graph& g,
              const std::vector<NodeId>& vs, NodeId v, int label,
              const Configuration& config) {
  const CoverageBound& bound = config.BoundFor(label);
  // |V_t| = |V_S ∪ {v}| must stay within the upper bound (Procedure 2 l.5).
  if (static_cast<int>(vs.size()) + 1 > bound.upper) return false;
  if (config.verify_mode == VerifyMode::kRelaxed) return true;

  std::vector<NodeId> vt = vs;
  vt.push_back(v);
  auto ev = EVerify(model, g, vt, label);
  if (!ev.ok()) return false;
  switch (config.verify_mode) {
    case VerifyMode::kStrict:
      // Procedure 2 line 2, verbatim.
      return ev.value().consistent && ev.value().counterfactual;
    case VerifyMode::kConsistentOnly:
      // Require consistency once the subgraph is large enough for the GNN to
      // read anything meaningful; counterfactuality is reported at the end.
      if (static_cast<int>(vt.size()) < 2) return true;
      return ev.value().consistent;
    case VerifyMode::kRelaxed:
      return true;
  }
  return false;
}

ViewVerification VerifyView(const GnnClassifier& model, const GraphDatabase& db,
                            const ExplanationView& view,
                            const Configuration& config) {
  ViewVerification out;
  const CoverageBound& bound = config.BoundFor(view.label);

  // C3: per-subgraph node counts within [b_l, u_l].
  out.properly_covers = true;
  for (const auto& s : view.subgraphs) {
    const int n = static_cast<int>(s.nodes.size());
    if (n < bound.lower || n > bound.upper) {
      out.properly_covers = false;
      out.detail = StrFormat("subgraph of graph %d has %d nodes outside [%d,%d]",
                             s.graph_index, n, bound.lower, bound.upper);
      break;
    }
  }

  // C2: consistency + counterfactual via EVerify on each subgraph.
  out.is_explanation_view = true;
  for (const auto& s : view.subgraphs) {
    if (s.graph_index < 0 || s.graph_index >= db.size()) {
      out.is_explanation_view = false;
      out.detail = StrFormat("subgraph references invalid graph %d",
                             s.graph_index);
      break;
    }
    auto ev = EVerify(model, db.graph(s.graph_index), s.nodes, view.label);
    if (!ev.ok() || !ev.value().consistent || !ev.value().counterfactual) {
      out.is_explanation_view = false;
      if (out.detail.empty()) {
        out.detail = StrFormat("subgraph of graph %d fails C2 (consistent=%d, "
                               "counterfactual=%d)",
                               s.graph_index,
                               ev.ok() ? ev.value().consistent : -1,
                               ev.ok() ? ev.value().counterfactual : -1);
      }
      break;
    }
  }

  // C1: every node of every subgraph covered by the pattern set (PMatch).
  std::vector<const Graph*> subgraphs;
  subgraphs.reserve(view.subgraphs.size());
  for (const auto& s : view.subgraphs) subgraphs.push_back(&s.subgraph);
  MatchOptions mopt;
  mopt.semantics = config.miner.semantics;
  out.is_graph_view = PatternsCoverAllNodes(view.patterns, subgraphs, mopt);
  if (!out.is_graph_view && out.detail.empty()) {
    out.detail = "patterns do not cover all subgraph nodes (C1)";
  }
  return out;
}

}  // namespace gvex
