// The "queryable" property of explanation views (§1, Table 1): a store over
// generated views that answers the kinds of questions the paper motivates,
// e.g. "which toxicophores occur in mutagens?" and "which graphs contain
// pattern P?".
//
// Complexity: AddView/Labels/PatternsForLabel are O(1)-ish map operations;
// the pattern queries (GraphsWithPattern, LabelsOfPattern,
// DatabaseGraphsWithPattern, DiscriminativePatterns) each run one subgraph-
// isomorphism check per (pattern, graph) pair scanned, so they are linear in
// the number of stored subgraphs/patterns times the match cost.
//
// Thread-safety: AddView mutates the store and must be externally
// synchronized; once all views are registered, the const query methods are
// safe to call concurrently (they only read the store and the database).

#ifndef GVEX_EXPLAIN_VIEW_QUERY_H_
#define GVEX_EXPLAIN_VIEW_QUERY_H_

#include <map>
#include <vector>

#include "explain/explanation.h"
#include "graph/graph_database.h"
#include "pattern/isomorphism.h"
#include "pattern/pattern.h"

namespace gvex {

/// Indexes a set of explanation views for direct querying.
class ViewStore {
 public:
  /// `db` must outlive the store; views are copied in.
  explicit ViewStore(const GraphDatabase* db);

  /// Registers a view (one per label).
  void AddView(ExplanationView view);

  /// Labels that have a registered view.
  std::vector<int> Labels() const;

  /// "Which patterns explain label l?" — the higher tier of l's view.
  const std::vector<Pattern>& PatternsForLabel(int label) const;

  /// "Which graphs of label group l contain pattern P (in their explanation
  /// subgraph)?" Returns database graph indices.
  std::vector<int> GraphsWithPattern(int label, const Pattern& p) const;

  /// "Which labels does pattern P explain?" — labels whose pattern tier
  /// contains an isomorphic pattern.
  std::vector<int> LabelsOfPattern(const Pattern& p) const;

  /// "Which *original* graphs in the database contain P?" — full-data
  /// pattern query, restricted to `label` (-1 = all graphs).
  std::vector<int> DatabaseGraphsWithPattern(const Pattern& p,
                                             int label = -1) const;

  /// Discriminative patterns for `label`: patterns of l's view that match no
  /// explanation subgraph of any other label (the P12-style structures of
  /// Example 1.1).
  std::vector<Pattern> DiscriminativePatterns(int label) const;

 private:
  const GraphDatabase* db_;
  std::map<int, ExplanationView> views_;
  MatchOptions match_options_;
};

}  // namespace gvex

#endif  // GVEX_EXPLAIN_VIEW_QUERY_H_
