// Compatibility shim: ViewStore moved to the serving subsystem
// (serve/view_store.h), where it is a thin wrapper over the inverted
// PatternIndex instead of a per-query isomorphism scan. This header keeps
// the historical include path working; targets using ViewStore must link
// gvex_serve. New code should include "serve/view_store.h" directly — or
// better, use the concurrent "serve/view_service.h" front end.

#ifndef GVEX_EXPLAIN_VIEW_QUERY_H_
#define GVEX_EXPLAIN_VIEW_QUERY_H_

#include "serve/view_store.h"

#endif  // GVEX_EXPLAIN_VIEW_QUERY_H_
