#include "explain/repair.h"

#include <algorithm>

#include "graph/subgraph.h"

namespace gvex {

namespace {

// P(label | G \ nodes); 1.0 on extraction failure (treated as "not flipped").
double RemainderProba(const GnnClassifier& model, const Graph& g,
                      const std::vector<NodeId>& nodes, int label) {
  auto rest = RemoveNodes(g, nodes);
  if (!rest.ok()) return 1.0;
  return model.ProbaOf(rest.value().graph, label);
}

bool IsCounterfactual(const GnnClassifier& model, const Graph& g,
                      const std::vector<NodeId>& nodes, int label) {
  auto rest = RemoveNodes(g, nodes);
  if (!rest.ok()) return false;
  return model.Predict(rest.value().graph) != label;
}

// Candidate unit: a node together with its unselected degree-1 neighbors.
// Removing a hub while leaving its pendant atoms behind strands them as
// isolated nodes (e.g. the two O of a nitro group when only N is removed),
// which rarely changes the model output; whole functional groups do.
std::vector<NodeId> GroupOf(const Graph& g, NodeId v,
                            const std::vector<bool>& selected) {
  std::vector<NodeId> group{v};
  for (const Neighbor& nb : g.neighbors(v)) {
    if (g.degree(nb.node) == 1 && !selected[static_cast<size_t>(nb.node)]) {
      group.push_back(nb.node);
    }
  }
  return group;
}

}  // namespace

bool CounterfactualRepair(const GnnClassifier& model, const Graph& g, int label,
                          const CoverageBound& bound, int max_iters,
                          std::vector<NodeId>* vs) {
  if (IsCounterfactual(model, g, *vs, label)) return true;
  std::vector<bool> selected(static_cast<size_t>(g.num_nodes()), false);
  for (NodeId v : *vs) selected[static_cast<size_t>(v)] = true;

  for (int iter = 0; iter < max_iters; ++iter) {
    const double current_p = RemainderProba(model, g, *vs, label);

    // Precompute the eviction order once per iteration: residents sorted by
    // how little their membership matters for the flip — lower
    // p(V_S \ {i}) means the flip does not need node i.
    std::vector<std::pair<double, size_t>> eviction_order;
    eviction_order.reserve(vs->size());
    for (size_t i = 0; i < vs->size(); ++i) {
      std::vector<NodeId> without = *vs;
      without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
      eviction_order.push_back(
          {RemainderProba(model, g, without, label), i});
    }
    std::sort(eviction_order.begin(), eviction_order.end());

    // Evaluate every candidate group: the trial set is V_S ∪ group with the
    // least-flip-useful residents evicted to respect the upper bound.
    double best_p = current_p;
    std::vector<NodeId> best_vs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (selected[static_cast<size_t>(v)]) continue;
      std::vector<NodeId> group = GroupOf(g, v, selected);
      if (static_cast<int>(group.size()) > bound.upper) continue;
      const int excess = static_cast<int>(vs->size() + group.size()) -
                         bound.upper;
      if (excess > static_cast<int>(vs->size())) continue;
      std::vector<bool> evicted(vs->size(), false);
      for (int k = 0; k < excess; ++k) {
        evicted[eviction_order[static_cast<size_t>(k)].second] = true;
      }
      std::vector<NodeId> trial;
      trial.reserve(static_cast<size_t>(bound.upper));
      for (size_t i = 0; i < vs->size(); ++i) {
        if (!evicted[i]) trial.push_back((*vs)[i]);
      }
      trial.insert(trial.end(), group.begin(), group.end());
      const double p = RemainderProba(model, g, trial, label);
      if (p < best_p) {
        best_p = p;
        best_vs = std::move(trial);
      }
    }
    if (best_vs.empty()) break;  // no improving move
    std::fill(selected.begin(), selected.end(), false);
    *vs = std::move(best_vs);
    for (NodeId v : *vs) selected[static_cast<size_t>(v)] = true;
    if (IsCounterfactual(model, g, *vs, label)) {
      std::sort(vs->begin(), vs->end());
      return true;
    }
  }
  std::sort(vs->begin(), vs->end());
  return IsCounterfactual(model, g, *vs, label);
}

}  // namespace gvex
