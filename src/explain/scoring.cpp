#include "explain/scoring.h"

#include "la/matrix_ops.h"

namespace gvex {

GraphScoringContext::GraphScoringContext(const GnnClassifier& model, const Graph& g,
                                         const Configuration& config)
    : num_nodes_(g.num_nodes()), gamma_(config.gamma) {
  influence_ = NodeInfluence::Compute(model, g, config.influence_mode,
                                      config.auto_exact_node_limit);
  embeddings_ = model.NodeEmbeddings(g);
  influenced_by_.resize(static_cast<size_t>(num_nodes_));
  neighborhood_.resize(static_cast<size_t>(num_nodes_));
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v = 0; v < num_nodes_; ++v) {
      if (influence_.I2(u, v) >= config.theta) {
        influenced_by_[static_cast<size_t>(u)].push_back(v);
      }
    }
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (NodeId w = 0; w < num_nodes_; ++w) {
      if (NormalizedRowDistance(embeddings_, v, w) <= config.r) {
        neighborhood_[static_cast<size_t>(v)].push_back(w);
      }
    }
  }
}

ScoreState::ScoreState(const GraphScoringContext* ctx) : ctx_(ctx) {
  influenced_.assign(static_cast<size_t>(ctx->num_nodes()), false);
  diversity_refcnt_.assign(static_cast<size_t>(ctx->num_nodes()), 0);
}

double ScoreState::Score() const {
  if (ctx_->num_nodes() == 0) return 0.0;
  return (influence_count_ + ctx_->gamma() * diversity_count_) /
         static_cast<double>(ctx_->num_nodes());
}

double ScoreState::GainOf(NodeId u) const {
  if (ctx_->num_nodes() == 0) return 0.0;
  int new_influenced = 0;
  double new_diverse = 0;
  // Count diversity additions without double counting across multiple newly
  // influenced nodes: use a small local set keyed by refcnt==0.
  std::vector<NodeId> touched;
  for (NodeId v : ctx_->InfluencedBy(u)) {
    if (influenced_[static_cast<size_t>(v)]) continue;
    ++new_influenced;
    for (NodeId w : ctx_->Neighborhood(v)) {
      if (diversity_refcnt_[static_cast<size_t>(w)] == 0) {
        bool seen = false;
        for (NodeId t : touched) {
          if (t == w) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          touched.push_back(w);
          new_diverse += 1.0;
        }
      }
    }
  }
  return (new_influenced + ctx_->gamma() * new_diverse) /
         static_cast<double>(ctx_->num_nodes());
}

void ScoreState::Add(NodeId u) {
  for (NodeId v : ctx_->InfluencedBy(u)) {
    if (influenced_[static_cast<size_t>(v)]) continue;
    influenced_[static_cast<size_t>(v)] = true;
    ++influence_count_;
    for (NodeId w : ctx_->Neighborhood(v)) {
      if (diversity_refcnt_[static_cast<size_t>(w)]++ == 0) {
        ++diversity_count_;
      }
    }
  }
}

double ScoreState::ScoreOfSet(const GraphScoringContext& ctx,
                              const std::vector<NodeId>& vs) {
  ScoreState state(&ctx);
  for (NodeId u : vs) state.Add(u);
  return state.Score();
}

}  // namespace gvex
