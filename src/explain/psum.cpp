#include "explain/psum.h"

#include <algorithm>
#include <set>

#include "pattern/coverage.h"
#include "util/thread_pool.h"

namespace gvex {

namespace {

// Per-candidate coverage across all subgraphs, flattened to global ids.
struct CandidateCoverage {
  std::vector<int> nodes;  // global node ids covered
  std::vector<int> edges;  // global edge ids covered
};

}  // namespace

Result<PsumResult> Psum(const std::vector<const Graph*>& subgraphs,
                        const Configuration& config, ThreadPool* pool) {
  PsumResult out;
  // Global id layout.
  std::vector<int> node_base(subgraphs.size() + 1, 0);
  std::vector<int> edge_base(subgraphs.size() + 1, 0);
  for (size_t i = 0; i < subgraphs.size(); ++i) {
    node_base[i + 1] = node_base[i] + subgraphs[i]->num_nodes();
    edge_base[i + 1] = edge_base[i] + subgraphs[i]->num_edges();
  }
  const int total_nodes = node_base.back();
  out.total_edges = edge_base.back();
  if (total_nodes == 0) {
    out.full_node_coverage = true;
    return out;
  }

  // PGen: mine candidates. min_support 1 so single-node patterns for every
  // type survive — they guarantee feasibility of full node coverage.
  MinerOptions mopts = config.miner;
  mopts.min_support = 1;
  std::vector<MinedPattern> mined = MinePatterns(subgraphs, mopts);
  if (mined.empty()) {
    return Status::Internal("PGen produced no candidates on non-empty input");
  }

  // Precompute the per-candidate global coverage table — the dominant Psum
  // cost (one pattern match per candidate x subgraph). Candidates are
  // partitioned into contiguous shards; each shard fills a shard-local
  // accumulator, and the accumulators are spliced back in shard-index order
  // at the barrier, so the table is byte-identical however the shards were
  // scheduled.
  MatchOptions mo;
  mo.semantics = mopts.semantics;
  const int num_candidates = static_cast<int>(mined.size());
  auto cover_one = [&](int c) {
    CandidateCoverage cc;
    for (size_t gi = 0; gi < subgraphs.size(); ++gi) {
      CoverageMask mask =
          ComputeCoverage(mined[static_cast<size_t>(c)].pattern,
                          *subgraphs[gi], mo);
      for (size_t v = 0; v < mask.nodes.size(); ++v) {
        if (mask.nodes[v]) {
          cc.nodes.push_back(node_base[gi] + static_cast<int>(v));
        }
      }
      for (size_t e = 0; e < mask.edges.size(); ++e) {
        if (mask.edges[e]) {
          cc.edges.push_back(edge_base[gi] + static_cast<int>(e));
        }
      }
    }
    return cc;
  };

  std::vector<CandidateCoverage> cov(mined.size());
  if (pool != nullptr && pool->num_threads() > 1 && num_candidates > 1) {
    // Batched shards (4x workers) smooth out uneven candidate match costs.
    const int num_shards = pool->num_threads() * 4;
    std::vector<std::vector<CandidateCoverage>> shard_acc(
        ThreadPool::MakeShards(num_shards, num_candidates).size());
    pool->RunSharded(num_shards, num_candidates, [&](const Shard& shard) {
      std::vector<CandidateCoverage>& acc =
          shard_acc[static_cast<size_t>(shard.index)];
      acc.reserve(static_cast<size_t>(shard.size()));
      for (int c = shard.begin; c < shard.end; ++c) {
        acc.push_back(cover_one(c));
      }
    });
    // Barrier passed: merge shard-local accumulators deterministically.
    size_t next = 0;
    for (std::vector<CandidateCoverage>& acc : shard_acc) {
      for (CandidateCoverage& cc : acc) cov[next++] = std::move(cc);
    }
  } else {
    for (int c = 0; c < num_candidates; ++c) {
      cov[static_cast<size_t>(c)] = cover_one(c);
    }
  }

  // Greedy weighted set cover. Weight w(P) = 1 - |P_ES|/|E_S| (Jaccard-style
  // penalty on uncovered edges). Classic greedy rule: pick the candidate
  // minimizing weight per newly covered node, i.e. maximizing
  // new_nodes / (w + eps).
  std::vector<bool> node_covered(static_cast<size_t>(total_nodes), false);
  std::vector<bool> edge_covered(static_cast<size_t>(out.total_edges), false);
  std::vector<bool> used(mined.size(), false);
  int covered_count = 0;
  const double kEps = 1e-6;

  while (covered_count < total_nodes) {
    int best = -1;
    double best_ratio = -1.0;
    for (size_t c = 0; c < mined.size(); ++c) {
      if (used[c]) continue;
      int new_nodes = 0;
      for (int gn : cov[c].nodes) {
        if (!node_covered[static_cast<size_t>(gn)]) ++new_nodes;
      }
      if (new_nodes == 0) continue;
      const double w =
          out.total_edges == 0
              ? 0.0
              : 1.0 - static_cast<double>(cov[c].edges.size()) /
                          out.total_edges;
      const double ratio = static_cast<double>(new_nodes) / (w + kEps);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) break;  // no candidate adds coverage (shouldn't happen)
    used[static_cast<size_t>(best)] = true;
    out.patterns.push_back(mined[static_cast<size_t>(best)].pattern);
    for (int gn : cov[static_cast<size_t>(best)].nodes) {
      if (!node_covered[static_cast<size_t>(gn)]) {
        node_covered[static_cast<size_t>(gn)] = true;
        ++covered_count;
      }
    }
    for (int ge : cov[static_cast<size_t>(best)].edges) {
      edge_covered[static_cast<size_t>(ge)] = true;
    }
  }

  out.covered_edges = static_cast<int>(
      std::count(edge_covered.begin(), edge_covered.end(), true));
  out.full_node_coverage = covered_count == total_nodes;
  return out;
}

Result<PsumResult> Psum(const std::vector<Graph>& subgraphs,
                        const Configuration& config, ThreadPool* pool) {
  std::vector<const Graph*> ptrs;
  ptrs.reserve(subgraphs.size());
  for (const Graph& g : subgraphs) ptrs.push_back(&g);
  return Psum(ptrs, config, pool);
}

}  // namespace gvex
