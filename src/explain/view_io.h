// Persistence for explanation views: generated views can be saved and
// reloaded, so the queryable store survives across sessions (views as
// materialized database objects — the view-based paradigm of §2.1).

#ifndef GVEX_EXPLAIN_VIEW_IO_H_
#define GVEX_EXPLAIN_VIEW_IO_H_

#include <string>
#include <vector>

#include "explain/explanation.h"
#include "util/status.h"

namespace gvex {

/// Serializes one explanation view (patterns + subgraphs + metadata).
std::string SerializeView(const ExplanationView& view);

/// Parses one or more views serialized by SerializeView.
Result<std::vector<ExplanationView>> ParseViews(const std::string& text);

/// File round-trip helpers.
Status SaveViews(const std::string& path,
                 const std::vector<ExplanationView>& views);
Result<std::vector<ExplanationView>> LoadViews(const std::string& path);

// --- Binary counterparts -------------------------------------------------
// The CRC-framed binary codec of the durable store (store/codec.h):
// versioned header, checksummed records, bit-identical double round trips.
// Declared here next to the text entry points; implemented by the store
// module — link gvex_store (gvex_serve pulls it in transitively) to use
// them. Binary view files start with the 4-byte magic "GVXS", so loaders
// can sniff the format.

/// Serializes views into one self-contained binary file image.
std::string SerializeViewsBinary(const std::vector<ExplanationView>& views);

/// Parses a SerializeViewsBinary image. Corrupt or truncated input returns
/// an error — never a partial view list.
Result<std::vector<ExplanationView>> ParseViewsBinary(const std::string& bytes);

/// File round-trip helpers for the binary format.
Status SaveViewsBinary(const std::string& path,
                       const std::vector<ExplanationView>& views);
Result<std::vector<ExplanationView>> LoadViewsBinary(const std::string& path);

}  // namespace gvex

#endif  // GVEX_EXPLAIN_VIEW_IO_H_
