// Persistence for explanation views: generated views can be saved and
// reloaded, so the queryable store survives across sessions (views as
// materialized database objects — the view-based paradigm of §2.1).

#ifndef GVEX_EXPLAIN_VIEW_IO_H_
#define GVEX_EXPLAIN_VIEW_IO_H_

#include <string>
#include <vector>

#include "explain/explanation.h"
#include "util/status.h"

namespace gvex {

/// Serializes one explanation view (patterns + subgraphs + metadata).
std::string SerializeView(const ExplanationView& view);

/// Parses one or more views serialized by SerializeView.
Result<std::vector<ExplanationView>> ParseViews(const std::string& text);

/// File round-trip helpers.
Status SaveViews(const std::string& path,
                 const std::vector<ExplanationView>& views);
Result<std::vector<ExplanationView>> LoadViews(const std::string& path);

}  // namespace gvex

#endif  // GVEX_EXPLAIN_VIEW_IO_H_
