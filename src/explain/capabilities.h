// The capability matrix of Table 1: which properties each explainer
// supports. Rendered by bench_table1_capabilities and used by tests to pin
// the documented feature set of this implementation.

#ifndef GVEX_EXPLAIN_CAPABILITIES_H_
#define GVEX_EXPLAIN_CAPABILITIES_H_

#include <string>
#include <vector>

namespace gvex {

/// One row of Table 1.
struct ExplainerCapabilities {
  std::string name;
  bool requires_learning = false;  // node/edge mask learning required
  bool graph_classification = false;
  bool node_classification = false;
  std::string target;              // explanation output format
  bool model_agnostic = false;
  bool label_specific = false;
  bool size_bound = false;
  bool coverage = false;
  bool configurable = false;
  bool queryable = false;
};

/// All rows of Table 1 (the five baselines + GVEX).
std::vector<ExplainerCapabilities> CapabilityTable();

}  // namespace gvex

#endif  // GVEX_EXPLAIN_CAPABILITIES_H_
