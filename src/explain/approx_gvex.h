// ApproxGVEX (Algorithm 1): the 1/2-approximate "explain-and-summarize"
// view generator.
//
// Explanation phase — greedy submodular maximization over nodes: repeatedly
// pick the candidate with maximum marginal explainability gain that passes
// VpExtend, until the upper bound u_l is reached; then backfill from the
// candidate pool V_u until the lower bound b_l holds (lines 3-17).
//
// Summary phase — Psum covers the selected nodes with mined patterns
// (line 18).

#ifndef GVEX_EXPLAIN_APPROX_GVEX_H_
#define GVEX_EXPLAIN_APPROX_GVEX_H_

#include <vector>

#include "explain/config.h"
#include "explain/explanation.h"
#include "explain/scoring.h"
#include "gnn/gcn_model.h"
#include "graph/graph_database.h"
#include "util/status.h"

namespace gvex {

/// The explain-and-summarize view generator.
class ApproxGvex {
 public:
  /// `model` must outlive this object.
  ApproxGvex(const GnnClassifier* model, Configuration config);

  const Configuration& config() const { return config_; }

  /// Explanation phase for one graph: greedily selects V_S and induces the
  /// explanation subgraph. Returns FailedPrecondition when no subgraph
  /// satisfying the lower bound exists (Algorithm 1 lines 16-17).
  Result<ExplanationSubgraph> ExplainGraph(const Graph& g, int graph_index,
                                           int label) const;

  /// Full pipeline for one label group: ExplainGraph over each graph in the
  /// group, then Psum to build the pattern tier. Graphs whose explanation is
  /// infeasible are skipped (reported via skipped count if non-null).
  Result<ExplanationView> GenerateView(const GraphDatabase& db, int label,
                                       int* skipped = nullptr) const;

  /// Views for several labels; `num_threads` > 1 parallelizes per graph
  /// within each label group (§A.7).
  Result<std::vector<ExplanationView>> GenerateViews(
      const GraphDatabase& db, const std::vector<int>& labels,
      int num_threads = 1) const;

 private:
  // Shared by GenerateView{,s}: explanation phase over a label group with
  // optional parallelism, then summary phase.
  Result<ExplanationView> GenerateViewImpl(const GraphDatabase& db, int label,
                                           int num_threads,
                                           int* skipped) const;

  const GnnClassifier* model_;
  Configuration config_;
};

}  // namespace gvex

#endif  // GVEX_EXPLAIN_APPROX_GVEX_H_
