// ApproxGVEX (Algorithm 1): the 1/2-approximate "explain-and-summarize"
// view generator.
//
// Explanation phase — greedy submodular maximization over nodes: repeatedly
// pick the candidate with maximum marginal explainability gain that passes
// VpExtend, until the upper bound u_l is reached; then backfill from the
// candidate pool V_u until the lower bound b_l holds (lines 3-17).
//
// Summary phase — Psum covers the selected nodes with mined patterns
// (line 18).
//
// Complexity: ExplainGraph is O(u_l · n log n) gain evaluations plus the
// VpExtend verification calls for one graph of n nodes; GenerateView is the
// sum over the label group plus one Psum. The approximation ratio of the
// explanation tier is 1/2 (Theorem 4.2).
//
// Thread-safety: ApproxGvex is immutable after construction; all member
// functions are const and safe to call concurrently from multiple threads
// (the shared GnnClassifier is only read). The parallel path of
// GenerateViews (§A.7) shards the label group across a worker pool with
// shard-local accumulators merged deterministically at a barrier — its
// output is bit-identical to the num_threads == 1 path.

#ifndef GVEX_EXPLAIN_APPROX_GVEX_H_
#define GVEX_EXPLAIN_APPROX_GVEX_H_

#include <vector>

#include "explain/config.h"
#include "explain/explanation.h"
#include "explain/scoring.h"
#include "gnn/gcn_model.h"
#include "graph/graph_database.h"
#include "util/status.h"

namespace gvex {

class ThreadPool;

/// The explain-and-summarize view generator.
class ApproxGvex {
 public:
  /// `model` must outlive this object.
  ApproxGvex(const GnnClassifier* model, Configuration config);

  const Configuration& config() const { return config_; }

  /// Explanation phase for one graph: greedily selects V_S and induces the
  /// explanation subgraph. Returns FailedPrecondition when no subgraph
  /// satisfying the lower bound exists (Algorithm 1 lines 16-17).
  Result<ExplanationSubgraph> ExplainGraph(const Graph& g, int graph_index,
                                           int label) const;

  /// Full pipeline for one label group: ExplainGraph over each graph in the
  /// group, then Psum to build the pattern tier. Graphs whose explanation is
  /// infeasible are skipped (reported via skipped count if non-null).
  Result<ExplanationView> GenerateView(const GraphDatabase& db, int label,
                                       int* skipped = nullptr) const;

  /// Views for several labels; `num_threads` > 1 parallelizes each label
  /// group's explanation phase and its Psum coverage table over a single
  /// worker pool shared across labels (§A.7). Graphs are partitioned into
  /// batched shards with shard-local result accumulators merged in shard
  /// order at a barrier, so the views are identical for every thread count.
  Result<std::vector<ExplanationView>> GenerateViews(
      const GraphDatabase& db, const std::vector<int>& labels,
      int num_threads = 1) const;

 private:
  // Shared by GenerateView{,s}: explanation phase over a label group,
  // sharded across `pool` when non-null (else sequential), then summary
  // phase.
  Result<ExplanationView> GenerateViewImpl(const GraphDatabase& db, int label,
                                           ThreadPool* pool,
                                           int* skipped) const;

  const GnnClassifier* model_;
  Configuration config_;
};

}  // namespace gvex

#endif  // GVEX_EXPLAIN_APPROX_GVEX_H_
