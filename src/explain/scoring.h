// The explainability objective of §3.1 (Eqs. 2-6) and the incremental state
// the greedy algorithms maintain over it.
//
//   f(G^l_V) = Σ_i ( I(V_si) + γ D(V_si) ) / |V_i|
//   I(V_s)   = |{ v : ∃u ∈ V_s, I2(u,v) ≥ θ }|          (influence, Eq. 5)
//   D(V_s)   = | ∪_{v influenced by V_s} r(v,d) |        (diversity, Eq. 6)
//   r(v,d)   = { v' : d(X^k_v, X^k_v') ≤ r }             (embedding ball)
//
// Lemma 3.3 shows I and D are monotone submodular in V_s; ScoreState exposes
// the O(deg)-amortized marginal gains the greedy algorithms need.

#ifndef GVEX_EXPLAIN_SCORING_H_
#define GVEX_EXPLAIN_SCORING_H_

#include <vector>

#include "explain/config.h"
#include "gnn/gcn_model.h"
#include "gnn/influence.h"
#include "graph/graph.h"

namespace gvex {

/// Immutable per-graph scoring context: pairwise influence (Eq. 3-4),
/// θ-thresholded influence lists, and r-radius embedding neighborhoods.
/// Built once per (model, graph) — this is the EVerify precomputation of
/// Algorithm 1 line 2.
class GraphScoringContext {
 public:
  GraphScoringContext(const GnnClassifier& model, const Graph& g,
                      const Configuration& config);

  int num_nodes() const { return num_nodes_; }

  /// Nodes v with I2(u, v) >= θ — the targets node u influences.
  const std::vector<NodeId>& InfluencedBy(NodeId u) const {
    return influenced_by_[static_cast<size_t>(u)];
  }

  /// r(v, d): nodes within embedding distance r of v (includes v itself).
  const std::vector<NodeId>& Neighborhood(NodeId v) const {
    return neighborhood_[static_cast<size_t>(v)];
  }

  const NodeInfluence& influence() const { return influence_; }
  const Matrix& embeddings() const { return embeddings_; }
  float gamma() const { return gamma_; }

 private:
  int num_nodes_;
  float gamma_;
  NodeInfluence influence_;
  Matrix embeddings_;
  std::vector<std::vector<NodeId>> influenced_by_;
  std::vector<std::vector<NodeId>> neighborhood_;
};

/// Mutable greedy state over one context: tracks the influenced set and the
/// diversity union with reference counts so marginal gains are exact and
/// Add() is O(|InfluencedBy| · |Neighborhood|).
class ScoreState {
 public:
  explicit ScoreState(const GraphScoringContext* ctx);

  /// Current (I + γD) / |V|.
  double Score() const;

  /// Raw I(V_s) and D(V_s) components.
  int InfluenceCount() const { return influence_count_; }
  int DiversityCount() const { return diversity_count_; }

  /// Marginal gain of adding `u` (does not mutate).
  double GainOf(NodeId u) const;

  /// Adds `u` to V_s.
  void Add(NodeId u);

  /// Static evaluation of an arbitrary node set (used by the streaming
  /// swap analysis, which needs scores of V_s \ {v}).
  static double ScoreOfSet(const GraphScoringContext& ctx,
                           const std::vector<NodeId>& vs);

 private:
  const GraphScoringContext* ctx_;
  std::vector<bool> influenced_;       // v influenced by current V_s
  std::vector<int> diversity_refcnt_;  // times v appears in the union
  int influence_count_ = 0;
  int diversity_count_ = 0;
};

}  // namespace gvex

#endif  // GVEX_EXPLAIN_SCORING_H_
