#include "explain/explanation.h"

#include "util/string_util.h"

namespace gvex {

int ExplanationView::TotalSubgraphNodes() const {
  int total = 0;
  for (const auto& s : subgraphs) total += s.subgraph.num_nodes();
  return total;
}

int ExplanationView::TotalSubgraphEdges() const {
  int total = 0;
  for (const auto& s : subgraphs) total += s.subgraph.num_edges();
  return total;
}

int ExplanationView::TotalPatternNodes() const {
  int total = 0;
  for (const auto& p : patterns) total += p.num_nodes();
  return total;
}

int ExplanationView::TotalPatternEdges() const {
  int total = 0;
  for (const auto& p : patterns) total += p.num_edges();
  return total;
}

std::string ExplanationView::Summary() const {
  int cf = 0;
  int cons = 0;
  for (const auto& s : subgraphs) {
    if (s.counterfactual) ++cf;
    if (s.consistent) ++cons;
  }
  return StrFormat(
      "ExplanationView(label=%d, |subgraphs|=%zu, |patterns|=%zu, "
      "f=%.4f, consistent=%d/%zu, counterfactual=%d/%zu, "
      "nodes=%d, pattern_nodes=%d)",
      label, subgraphs.size(), patterns.size(), explainability, cons,
      subgraphs.size(), cf, subgraphs.size(), TotalSubgraphNodes(),
      TotalPatternNodes());
}

}  // namespace gvex
