// Evaluation metrics of §6.1: Fidelity+ (Eq. 8), Fidelity- (Eq. 9), Sparsity
// (Eq. 10), Compression (Eq. 11), and the edge-loss measure of Fig. 8c/d.

#ifndef GVEX_EXPLAIN_METRICS_H_
#define GVEX_EXPLAIN_METRICS_H_

#include <vector>

#include "explain/explanation.h"
#include "gnn/gcn_model.h"
#include "graph/graph_database.h"

namespace gvex {

/// Fidelity+ over a set of explanation subgraphs: mean of
/// Pr(M(G)=l_G) - Pr(M(G \ G_s)=l_G). Higher is better (removal hurts).
double FidelityPlus(const GnnClassifier& model, const GraphDatabase& db,
                    const std::vector<ExplanationSubgraph>& explanations);

/// Fidelity-: mean of Pr(M(G)=l_G) - Pr(M(G_s)=l_G). Closer to (or below)
/// zero is better (the explanation alone reproduces the prediction).
double FidelityMinus(const GnnClassifier& model, const GraphDatabase& db,
                     const std::vector<ExplanationSubgraph>& explanations);

/// Sparsity: mean of 1 - (|V_s|+|E_s|)/(|V|+|E|). Higher = more concise.
double Sparsity(const GraphDatabase& db,
                const std::vector<ExplanationSubgraph>& explanations);

/// Compression of the pattern tier relative to the subgraph tier:
/// 1 - (|V_P|+|E_P|)/(|V_S|+|E_S|). Only meaningful for two-tier views.
double Compression(const ExplanationView& view);

/// Fraction of subgraph edges not covered by the view's patterns.
double EdgeLoss(const ExplanationView& view);

}  // namespace gvex

#endif  // GVEX_EXPLAIN_METRICS_H_
