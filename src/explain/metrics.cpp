#include "explain/metrics.h"

#include "graph/subgraph.h"
#include "pattern/coverage.h"

namespace gvex {

double FidelityPlus(const GnnClassifier& model, const GraphDatabase& db,
                    const std::vector<ExplanationSubgraph>& explanations) {
  if (explanations.empty()) return 0.0;
  double total = 0.0;
  int counted = 0;
  for (const auto& ex : explanations) {
    const Graph& g = db.graph(ex.graph_index);
    const int l = model.Predict(g);
    const double orig = model.ProbaOf(g, l);
    auto rest = RemoveNodes(g, ex.nodes);
    if (!rest.ok()) continue;
    const double masked = model.ProbaOf(rest.value().graph, l);
    total += orig - masked;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

double FidelityMinus(const GnnClassifier& model, const GraphDatabase& db,
                     const std::vector<ExplanationSubgraph>& explanations) {
  if (explanations.empty()) return 0.0;
  double total = 0.0;
  int counted = 0;
  for (const auto& ex : explanations) {
    const Graph& g = db.graph(ex.graph_index);
    const int l = model.Predict(g);
    const double orig = model.ProbaOf(g, l);
    const double sub = model.ProbaOf(ex.subgraph, l);
    total += orig - sub;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

double Sparsity(const GraphDatabase& db,
                const std::vector<ExplanationSubgraph>& explanations) {
  if (explanations.empty()) return 0.0;
  double total = 0.0;
  int counted = 0;
  for (const auto& ex : explanations) {
    const Graph& g = db.graph(ex.graph_index);
    const int denom = g.num_nodes() + g.num_edges();
    if (denom == 0) continue;
    const int numer = ex.subgraph.num_nodes() + ex.subgraph.num_edges();
    total += 1.0 - static_cast<double>(numer) / denom;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

double Compression(const ExplanationView& view) {
  const int sub = view.TotalSubgraphNodes() + view.TotalSubgraphEdges();
  if (sub == 0) return 0.0;
  const int pat = view.TotalPatternNodes() + view.TotalPatternEdges();
  return 1.0 - static_cast<double>(pat) / sub;
}

double EdgeLoss(const ExplanationView& view) {
  int total_edges = 0;
  int covered = 0;
  for (const auto& s : view.subgraphs) {
    total_edges += s.subgraph.num_edges();
    CoverageMask m = ComputeCoverage(view.patterns, s.subgraph);
    covered += m.CountEdges();
  }
  if (total_edges == 0) return 0.0;
  return 1.0 - static_cast<double>(covered) / total_edges;
}

}  // namespace gvex
