// StreamGVEX (Algorithm 3): the 1/4-approximate single-pass streaming view
// generator. Nodes of each graph arrive as a stream; V_S is maintained as a
// bounded cache with the greedy swapping rule of Procedure 4 (replace the
// min-loss resident only when the arriving node's gain is at least twice the
// loss), and the pattern tier is maintained incrementally with Procedure 5
// (mask what existing patterns cover, mine new patterns from the uncovered
// neighborhood, swap out zero-contribution patterns).
//
// The Jacobian is maintained per IncEVerify: one inference trace per graph,
// with influence columns materialized lazily as their source node arrives.
// Anytime access: the view after any prefix of the stream is valid for the
// seen fraction (Theorem 5.1).
//
// Complexity: each arriving node costs O(u_l) gain/loss evaluations for the
// Procedure 4 swap plus the incremental Procedure 5 pattern maintenance on
// the changed neighborhood — O(n · u_l) per graph over the whole stream,
// with a 1/4 approximation guarantee (Theorem 5.1).
//
// Thread-safety: StreamGraphState is single-writer mutable state — confine
// each instance to one thread. StreamGvex itself is immutable after
// construction; its const methods may run concurrently, and GenerateView's
// parallel path streams disjoint graphs on separate workers (one
// StreamGraphState per graph, never shared).

#ifndef GVEX_EXPLAIN_STREAM_GVEX_H_
#define GVEX_EXPLAIN_STREAM_GVEX_H_

#include <functional>
#include <vector>

#include "explain/config.h"
#include "explain/explanation.h"
#include "explain/scoring.h"
#include "gnn/gcn_model.h"
#include "graph/graph_database.h"
#include "util/status.h"

namespace gvex {

/// Streaming per-graph explanation state (one graph, one label).
class StreamGraphState {
 public:
  /// Builds the state; the scoring context is the single-pass EVerify trace.
  StreamGraphState(const GnnClassifier* model, const Graph* g, int graph_index,
                   int label, const Configuration* config);

  /// Processes one arriving node (Algorithm 3 lines 3-9).
  void ProcessNode(NodeId v);

  /// Post-processing: backfill from V_u to satisfy the lower bound
  /// (Algorithm 3 line 10).
  void Finalize();

  /// Number of stream nodes processed so far.
  int processed() const { return processed_; }

  /// Current selected node set V_S.
  const std::vector<NodeId>& selected() const { return vs_; }

  /// Current incremental pattern tier P_c.
  const std::vector<Pattern>& patterns() const { return patterns_; }

  /// Materializes the current explanation subgraph (anytime accessor).
  Result<ExplanationSubgraph> Snapshot() const;

 private:
  // Procedure 4: greedy swap of V_S.
  void IncUpdateVS(NodeId v);
  // Procedure 5: incremental pattern maintenance after V_S changed.
  void IncUpdateP();
  double ScoreOf(const std::vector<NodeId>& vs) const;

  const GnnClassifier* model_;
  const Graph* g_;
  int graph_index_;
  int label_;
  const Configuration* config_;
  GraphScoringContext ctx_;

  std::vector<NodeId> vs_;
  std::vector<NodeId> vu_;
  std::vector<bool> in_vs_;
  std::vector<bool> in_vu_;
  std::vector<Pattern> patterns_;
  int processed_ = 0;
};

/// Database-level driver mirroring ApproxGvex's interface.
class StreamGvex {
 public:
  StreamGvex(const GnnClassifier* model, Configuration config);

  const Configuration& config() const { return config_; }

  /// Streams one graph's nodes (in `order` if given, else 0..n-1) and returns
  /// the final explanation subgraph together with its patterns.
  struct GraphResult {
    ExplanationSubgraph subgraph;
    std::vector<Pattern> patterns;
  };
  Result<GraphResult> ExplainGraphStreaming(
      const Graph& g, int graph_index, int label,
      const std::vector<NodeId>* order = nullptr) const;

  /// Full view for one label group; per-graph streams are independent and
  /// can run on `num_threads` workers. Patterns from all graphs are merged
  /// (deduplicated by canonical code).
  Result<ExplanationView> GenerateView(const GraphDatabase& db, int label,
                                       int num_threads = 1,
                                       int* skipped = nullptr) const;

  /// Anytime experiment hook: processes only the first `fraction` of each
  /// node stream, then finalizes (Fig. 9f).
  Result<ExplanationView> GenerateViewPartial(const GraphDatabase& db,
                                              int label,
                                              double fraction) const;

 private:
  const GnnClassifier* model_;
  Configuration config_;
};

}  // namespace gvex

#endif  // GVEX_EXPLAIN_STREAM_GVEX_H_
