// View verification (§3.3) and its primitive operators (§4):
//  * EVerify — GNN inference on G_s and G \ G_s to check the consistent and
//    counterfactual properties (constraint C2).
//  * PMatch — pattern matching / node coverage (constraints C1, C3); backed
//    by the pattern substrate.
//  * VpExtend (Procedure 2) — can candidate node v extend V_S?
//  * VerifyView — the three-constraint check of Lemma 3.1.

#ifndef GVEX_EXPLAIN_VERIFY_H_
#define GVEX_EXPLAIN_VERIFY_H_

#include <string>
#include <vector>

#include "explain/config.h"
#include "explain/explanation.h"
#include "gnn/gcn_model.h"
#include "graph/graph.h"
#include "graph/graph_database.h"
#include "util/status.h"

namespace gvex {

/// Outcome of the consistency/counterfactual inference check.
struct EVerifyResult {
  bool consistent = false;       // M(G_s) == l
  bool counterfactual = false;   // M(G \ G_s) != l
  int subgraph_label = -1;       // M(G_s)
  int remainder_label = -1;      // M(G \ G_s)
};

/// Runs the two inferences of constraint C2 for the node set `nodes` of `g`
/// against target label `label`.
Result<EVerifyResult> EVerify(const GnnClassifier& model, const Graph& g,
                              const std::vector<NodeId>& nodes, int label);

/// Procedure 2: whether V_S can be extended with `v`. Enforces the upper
/// bound |V_S ∪ {v}| <= u_l always, plus the model-consistency invariants
/// selected by `config.verify_mode`.
bool VpExtend(const GnnClassifier& model, const Graph& g,
              const std::vector<NodeId>& vs, NodeId v, int label,
              const Configuration& config);

/// Result of full view verification (constraints C1-C3 of Lemma 3.1).
struct ViewVerification {
  bool is_graph_view = false;        // C1: patterns cover all subgraph nodes
  bool is_explanation_view = false;  // C2: all subgraphs consistent + CF
  bool properly_covers = false;      // C3: per-subgraph node counts in bounds
  std::string detail;                // first violated condition, if any

  bool ok() const {
    return is_graph_view && is_explanation_view && properly_covers;
  }
};

/// Verifies an explanation view against the database and configuration.
/// The view's graph_index fields must reference `db`.
ViewVerification VerifyView(const GnnClassifier& model, const GraphDatabase& db,
                            const ExplanationView& view,
                            const Configuration& config);

}  // namespace gvex

#endif  // GVEX_EXPLAIN_VERIFY_H_
