// The explanation structures of §2.2: explanation subgraphs (lower tier) and
// explanation views G^l_V = (P^l, G^l_s) (two-tier).

#ifndef GVEX_EXPLAIN_EXPLANATION_H_
#define GVEX_EXPLAIN_EXPLANATION_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace gvex {

/// One explanation subgraph G^l_s of an input graph, with its verification
/// outcome and its contribution to the explainability objective.
struct ExplanationSubgraph {
  /// Index of the explained graph in the database.
  int graph_index = -1;
  /// Selected nodes V_s (ids in the original graph).
  std::vector<NodeId> nodes;
  /// The node-induced subgraph.
  Graph subgraph;
  /// M(G_s) == M(G) == l ("consistent").
  bool consistent = false;
  /// M(G \ G_s) != l ("counterfactual").
  bool counterfactual = false;
  /// This subgraph's term of Eq. (2): (I(V_s) + γ D(V_s)) / |V|.
  double explainability = 0.0;
};

/// A two-tier explanation view for one class label.
struct ExplanationView {
  int label = -1;
  /// Higher tier P^l: patterns covering the nodes of all subgraphs.
  std::vector<Pattern> patterns;
  /// Lower tier G^l_s: one explanation subgraph per graph in the label group.
  std::vector<ExplanationSubgraph> subgraphs;
  /// f(G^l_V) — sum of the per-subgraph explainability terms.
  double explainability = 0.0;

  /// Σ |V_si| across subgraphs.
  int TotalSubgraphNodes() const;
  /// Σ |E_si| across subgraphs.
  int TotalSubgraphEdges() const;
  /// Σ |V_p| across patterns.
  int TotalPatternNodes() const;
  /// Σ |E_p| across patterns.
  int TotalPatternEdges() const;

  /// Human-readable summary for examples and logging.
  std::string Summary() const;
};

}  // namespace gvex

#endif  // GVEX_EXPLAIN_EXPLANATION_H_
