// Counterfactual repair: Algorithm 1 returns ∅ when no selection satisfies
// the counterfactual invariant at every greedy step, which on real models is
// the common case (removing a single node almost never flips a GCN). Instead
// of discarding the graph, this post-pass restores feasibility: it greedily
// adds (or swaps in, when the budget is full) the nodes whose removal from G
// most decreases P(label | G \ V_S), until M(G \ V_S) != label or a budget
// is exhausted. The explainability objective is monotone, so additions never
// hurt it; swaps trade a small amount of f for the counterfactual property
// required by the definition of explanation subgraphs (§2.2).

#ifndef GVEX_EXPLAIN_REPAIR_H_
#define GVEX_EXPLAIN_REPAIR_H_

#include <vector>

#include "explain/config.h"
#include "gnn/gcn_model.h"
#include "graph/graph.h"

namespace gvex {

/// In-place repair of `vs` toward the counterfactual property. Returns true
/// if M(G \ vs) != label on exit. Respects bound.upper; performs at most
/// `max_iters` add/swap steps.
bool CounterfactualRepair(const GnnClassifier& model, const Graph& g,
                          int label, const CoverageBound& bound,
                          int max_iters, std::vector<NodeId>* vs);

}  // namespace gvex

#endif  // GVEX_EXPLAIN_REPAIR_H_
