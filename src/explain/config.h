// The configuration C = (θ, r, {[b_l, u_l]}) of §3.2, extended with the
// implementation knobs the paper leaves open (influence mode, verification
// strictness, miner limits).

#ifndef GVEX_EXPLAIN_CONFIG_H_
#define GVEX_EXPLAIN_CONFIG_H_

#include <map>

#include "gnn/influence.h"
#include "pattern/miner.h"
#include "util/status.h"

namespace gvex {

/// Per-label coverage constraint [b_l, u_l] on explanation-subgraph nodes.
/// Following Algorithm 1 / Example 4.2, bounds apply per explanation
/// subgraph; group-level proper coverage is checked by VerifyView.
struct CoverageBound {
  int lower = 0;
  int upper = 15;
};

/// How VpExtend (Procedure 2) enforces the consistent/counterfactual
/// invariants during greedy growth. See DESIGN.md: the paper-literal check
/// rejects every first node on most graphs, so the default only requires
/// consistency during growth and evaluates counterfactuality on the result.
enum class VerifyMode {
  kStrict,          // paper-literal: consistent AND counterfactual at every step
  kConsistentOnly,  // consistent at every step (once >= 2 nodes); CF at end
  kRelaxed,         // score-driven growth; both properties evaluated at end
};

/// Full configuration for explanation-view generation.
struct Configuration {
  /// Influence threshold θ of Eq. (5).
  float theta = 0.1f;
  /// Embedding-distance radius r of the diversity neighborhood (Eq. 6).
  float r = 0.5f;
  /// Influence/diversity trade-off γ of Eq. (2).
  float gamma = 0.5f;

  /// Per-label coverage constraints; labels not present use `default_bound`.
  std::map<int, CoverageBound> coverage;
  CoverageBound default_bound;

  InfluenceMode influence_mode = InfluenceMode::kAuto;
  VerifyMode verify_mode = VerifyMode::kConsistentOnly;

  /// Pattern-mining limits consumed by PGen / Psum.
  MinerOptions miner;

  /// The r-hop radius IncPGen explores around an arriving node (§5).
  int stream_pgen_hops = 1;

  /// Bound for kAuto exact-Jacobian selection.
  int auto_exact_node_limit = 128;

  /// Post-selection counterfactual repair (see explain/repair.h): when the
  /// greedy selection is not counterfactual, greedily swap in the nodes
  /// whose removal most lowers P(label | G \ V_S). Realizes the feasibility
  /// requirement of §2.2 that Algorithm 1 would otherwise answer with ∅.
  bool counterfactual_repair = true;
  int repair_budget = 8;

  /// Coverage bound for `label`.
  const CoverageBound& BoundFor(int label) const;

  /// Sanity checks (θ ∈ [0,1], bounds ordered, γ ∈ [0,1], ...).
  Status Validate() const;
};

}  // namespace gvex

#endif  // GVEX_EXPLAIN_CONFIG_H_
