#include "explain/config.h"

#include "util/string_util.h"

namespace gvex {

const CoverageBound& Configuration::BoundFor(int label) const {
  auto it = coverage.find(label);
  return it == coverage.end() ? default_bound : it->second;
}

Status Configuration::Validate() const {
  if (theta < 0.0f || theta > 1.0f) {
    return Status::InvalidArgument(StrFormat("theta %.3f outside [0,1]", theta));
  }
  if (r < 0.0f) {
    return Status::InvalidArgument(StrFormat("r %.3f negative", r));
  }
  if (gamma < 0.0f || gamma > 1.0f) {
    return Status::InvalidArgument(StrFormat("gamma %.3f outside [0,1]", gamma));
  }
  auto check_bound = [](const CoverageBound& b) -> Status {
    if (b.lower < 0 || b.upper < b.lower) {
      return Status::InvalidArgument(
          StrFormat("coverage bound [%d,%d] invalid", b.lower, b.upper));
    }
    return Status::OK();
  };
  GVEX_RETURN_NOT_OK(check_bound(default_bound));
  for (const auto& [label, bound] : coverage) {
    GVEX_RETURN_NOT_OK(check_bound(bound));
  }
  if (miner.max_pattern_nodes < 1) {
    return Status::InvalidArgument("miner.max_pattern_nodes must be >= 1");
  }
  if (stream_pgen_hops < 0) {
    return Status::InvalidArgument("stream_pgen_hops must be >= 0");
  }
  if (repair_budget < 0) {
    return Status::InvalidArgument("repair_budget must be >= 0");
  }
  return Status::OK();
}

}  // namespace gvex
