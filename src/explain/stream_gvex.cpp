#include "explain/stream_gvex.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "explain/psum.h"
#include "explain/repair.h"
#include "explain/verify.h"
#include "graph/subgraph.h"
#include "pattern/coverage.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gvex {

StreamGraphState::StreamGraphState(const GnnClassifier* model, const Graph* g,
                                   int graph_index, int label,
                                   const Configuration* config)
    : model_(model),
      g_(g),
      graph_index_(graph_index),
      label_(label),
      config_(config),
      ctx_(*model, *g, *config) {
  in_vs_.assign(static_cast<size_t>(g->num_nodes()), false);
  in_vu_.assign(static_cast<size_t>(g->num_nodes()), false);
}

double StreamGraphState::ScoreOf(const std::vector<NodeId>& vs) const {
  return ScoreState::ScoreOfSet(ctx_, vs);
}

void StreamGraphState::ProcessNode(NodeId v) {
  ++processed_;
  if (in_vs_[static_cast<size_t>(v)]) return;
  // Line 4-5: record marginal weight, enlarge candidate pool.
  if (!in_vu_[static_cast<size_t>(v)]) {
    in_vu_[static_cast<size_t>(v)] = true;
    vu_.push_back(v);
  }
  // Line 6: extendability test.
  if (!VpExtend(*model_, *g_, vs_, v, label_, *config_)) return;
  // Line 7: greedy swap maintenance of V_S.
  IncUpdateVS(v);
  // Lines 8-9: if v entered V_S, maintain the pattern tier.
  if (in_vs_[static_cast<size_t>(v)]) IncUpdateP();
}

void StreamGraphState::IncUpdateVS(NodeId v) {
  const CoverageBound& bound = config_->BoundFor(label_);
  // Case (a): room in the cache.
  if (static_cast<int>(vs_.size()) < bound.upper) {
    vs_.push_back(v);
    in_vs_[static_cast<size_t>(v)] = true;
    if (in_vu_[static_cast<size_t>(v)]) {
      in_vu_[static_cast<size_t>(v)] = false;
      vu_.erase(std::find(vu_.begin(), vu_.end(), v));
    }
    return;
  }
  // Case (b): if the current patterns already cover v's type structure, the
  // arriving node cannot improve the queryable tier; skip cheaply when its
  // standalone gain is zero.
  // Case (c): greedy swap — find resident v- with the smallest removal loss.
  const double full = ScoreOf(vs_);
  double min_loss = -1.0;
  size_t min_idx = 0;
  for (size_t i = 0; i < vs_.size(); ++i) {
    std::vector<NodeId> without = vs_;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
    const double loss = full - ScoreOf(without);
    if (min_loss < 0.0 || loss < min_loss) {
      min_loss = loss;
      min_idx = i;
    }
  }
  // Gain of v over V_S \ {v-}; swap only when gain >= 2 * loss (Procedure 4).
  std::vector<NodeId> without = vs_;
  NodeId evicted = without[min_idx];
  without.erase(without.begin() + static_cast<std::ptrdiff_t>(min_idx));
  std::vector<NodeId> with_v = without;
  with_v.push_back(v);
  const double gain = ScoreOf(with_v) - ScoreOf(without);
  if (gain >= 2.0 * min_loss && gain > 0.0) {
    in_vs_[static_cast<size_t>(evicted)] = false;
    if (!in_vu_[static_cast<size_t>(evicted)]) {
      in_vu_[static_cast<size_t>(evicted)] = true;
      vu_.push_back(evicted);
    }
    vs_[min_idx] = v;
    in_vs_[static_cast<size_t>(v)] = true;
    if (in_vu_[static_cast<size_t>(v)]) {
      in_vu_[static_cast<size_t>(v)] = false;
      vu_.erase(std::find(vu_.begin(), vu_.end(), v));
    }
  }
}

void StreamGraphState::IncUpdateP() {
  // Materialize the current explanation subgraph.
  std::vector<NodeId> sorted = vs_;
  std::sort(sorted.begin(), sorted.end());
  auto sub = ExtractInducedSubgraph(*g_, sorted);
  if (!sub.ok()) return;
  const Graph& gs = sub.value().graph;
  if (gs.num_nodes() == 0) {
    patterns_.clear();
    return;
  }
  MatchOptions mo;
  mo.semantics = config_->miner.semantics;

  // Mask nodes already covered by retained patterns (Procedure 5 / Fig. 4).
  CoverageMask covered = ComputeCoverage(patterns_, gs, mo);
  std::vector<NodeId> uncovered;
  for (NodeId v = 0; v < gs.num_nodes(); ++v) {
    if (!covered.nodes[static_cast<size_t>(v)]) uncovered.push_back(v);
  }
  if (!uncovered.empty()) {
    // IncPGen: mine only the r-hop neighborhood of the uncovered fraction.
    std::unordered_set<NodeId> region(uncovered.begin(), uncovered.end());
    for (NodeId v : uncovered) {
      InducedSubgraph nb = ExtractNeighborhood(gs, v, config_->stream_pgen_hops);
      for (NodeId orig : nb.original_nodes) region.insert(orig);
    }
    std::vector<NodeId> region_nodes(region.begin(), region.end());
    std::sort(region_nodes.begin(), region_nodes.end());
    auto region_sub = ExtractInducedSubgraph(gs, region_nodes);
    if (region_sub.ok()) {
      MinerOptions mopts = config_->miner;
      mopts.min_support = 1;
      std::vector<const Graph*> one{&region_sub.value().graph};
      auto mined = MinePatterns(one, mopts);
      // Greedily add new patterns until the uncovered fraction is covered.
      std::set<std::string> have;
      for (const Pattern& p : patterns_) have.insert(p.canonical_code());
      for (const auto& mp : mined) {
        if (have.count(mp.pattern.canonical_code())) continue;
        CoverageMask m = ComputeCoverage(mp.pattern, gs, mo);
        bool helps = false;
        for (NodeId v : uncovered) {
          if (m.nodes[static_cast<size_t>(v)]) {
            helps = true;
            break;
          }
        }
        if (!helps) continue;
        patterns_.push_back(mp.pattern);
        have.insert(mp.pattern.canonical_code());
        MergeCoverage(m, &covered);
        uncovered.erase(std::remove_if(uncovered.begin(), uncovered.end(),
                                       [&](NodeId v) {
                                         return covered.nodes[static_cast<size_t>(v)];
                                       }),
                        uncovered.end());
        if (uncovered.empty()) break;
      }
    }
  }

  // Swap-out phase: drop patterns that no longer contribute coverage,
  // preferring to drop the one with the largest edge-miss weight.
  if (patterns_.size() > 1) {
    for (size_t i = 0; i < patterns_.size();) {
      std::vector<Pattern> others;
      for (size_t j = 0; j < patterns_.size(); ++j) {
        if (j != i) others.push_back(patterns_[j]);
      }
      CoverageMask without = ComputeCoverage(others, gs, mo);
      if (without.AllNodes()) {
        patterns_.erase(patterns_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

void StreamGraphState::Finalize() {
  const CoverageBound& bound = config_->BoundFor(label_);
  // Backfill from V_u (highest standalone score first) to reach the lower
  // bound, mirroring Algorithm 1's lines 10-15.
  while (static_cast<int>(vs_.size()) < bound.lower && !vu_.empty()) {
    double best = -1.0;
    size_t best_idx = 0;
    for (size_t i = 0; i < vu_.size(); ++i) {
      std::vector<NodeId> with_v = vs_;
      with_v.push_back(vu_[i]);
      double gain = ScoreOf(with_v);
      if (gain > best) {
        best = gain;
        best_idx = i;
      }
    }
    NodeId v = vu_[best_idx];
    vu_.erase(vu_.begin() + static_cast<std::ptrdiff_t>(best_idx));
    in_vu_[static_cast<size_t>(v)] = false;
    if (!VpExtend(*model_, *g_, vs_, v, label_, *config_)) continue;
    vs_.push_back(v);
    in_vs_[static_cast<size_t>(v)] = true;
  }
  // Counterfactual repair over the seen fraction (see explain/repair.h).
  if (config_->counterfactual_repair && !vs_.empty()) {
    std::vector<NodeId> repaired = vs_;
    if (CounterfactualRepair(*model_, *g_, label_, bound,
                             config_->repair_budget, &repaired) ||
        repaired != vs_) {
      std::fill(in_vs_.begin(), in_vs_.end(), false);
      vs_ = std::move(repaired);
      for (NodeId v : vs_) in_vs_[static_cast<size_t>(v)] = true;
    }
  }
  if (!vs_.empty()) IncUpdateP();
}

Result<ExplanationSubgraph> StreamGraphState::Snapshot() const {
  if (vs_.empty()) {
    return Status::FailedPrecondition("no nodes selected yet");
  }
  ExplanationSubgraph out;
  out.graph_index = graph_index_;
  out.nodes = vs_;
  std::sort(out.nodes.begin(), out.nodes.end());
  auto sub = ExtractInducedSubgraph(*g_, out.nodes);
  if (!sub.ok()) return sub.status();
  out.subgraph = std::move(sub.value().graph);
  out.explainability = ScoreState::ScoreOfSet(ctx_, out.nodes);
  auto ev = EVerify(*model_, *g_, out.nodes, label_);
  if (ev.ok()) {
    out.consistent = ev.value().consistent;
    out.counterfactual = ev.value().counterfactual;
  }
  return out;
}

StreamGvex::StreamGvex(const GnnClassifier* model, Configuration config)
    : model_(model), config_(std::move(config)) {}

Result<StreamGvex::GraphResult> StreamGvex::ExplainGraphStreaming(
    const Graph& g, int graph_index, int label,
    const std::vector<NodeId>* order) const {
  GVEX_RETURN_NOT_OK(config_.Validate());
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("cannot explain an empty graph");
  }
  StreamGraphState state(model_, &g, graph_index, label, &config_);
  if (order) {
    for (NodeId v : *order) state.ProcessNode(v);
  } else {
    for (NodeId v = 0; v < g.num_nodes(); ++v) state.ProcessNode(v);
  }
  state.Finalize();
  const CoverageBound& bound = config_.BoundFor(label);
  if (static_cast<int>(state.selected().size()) < bound.lower ||
      state.selected().empty()) {
    return Status::FailedPrecondition(
        StrFormat("stream produced no feasible explanation for graph %d",
                  graph_index));
  }
  auto snap = state.Snapshot();
  if (!snap.ok()) return snap.status();
  GraphResult out;
  out.subgraph = std::move(snap).value();
  out.patterns = state.patterns();
  return out;
}

namespace {

// Merges per-graph pattern sets, deduplicating by canonical code.
std::vector<Pattern> MergePatternSets(
    const std::vector<std::vector<Pattern>>& sets) {
  std::vector<Pattern> merged;
  std::set<std::string> seen;
  for (const auto& set : sets) {
    for (const Pattern& p : set) {
      if (seen.insert(p.canonical_code()).second) merged.push_back(p);
    }
  }
  return merged;
}

}  // namespace

Result<ExplanationView> StreamGvex::GenerateView(const GraphDatabase& db,
                                                 int label, int num_threads,
                                                 int* skipped) const {
  std::vector<int> group = db.LabelGroup(label);
  if (group.empty()) {
    return Status::NotFound(StrFormat("label group %d is empty", label));
  }
  std::vector<ExplanationSubgraph> subgraphs(group.size());
  std::vector<std::vector<Pattern>> pattern_sets(group.size());
  // char, not bool: vector<bool> is bit-packed, so concurrent writes to
  // neighboring slots from different workers would race on shared bytes.
  std::vector<char> ok_flags(group.size(), 0);

  // Batched shards (4x workers) over the label group; results land in
  // slot-indexed vectors, so output is identical for every worker count.
  ThreadPool::ParallelForShards(
      num_threads, num_threads * 4, static_cast<int>(group.size()),
      [&](const Shard& shard) {
        for (int gi = shard.begin; gi < shard.end; ++gi) {
          auto res =
              ExplainGraphStreaming(db.graph(group[static_cast<size_t>(gi)]),
                                    group[static_cast<size_t>(gi)], label);
          if (res.ok()) {
            subgraphs[static_cast<size_t>(gi)] = std::move(res.value().subgraph);
            pattern_sets[static_cast<size_t>(gi)] =
                std::move(res.value().patterns);
            ok_flags[static_cast<size_t>(gi)] = 1;
          }
        }
      });

  ExplanationView view;
  view.label = label;
  int skip_count = 0;
  for (size_t i = 0; i < subgraphs.size(); ++i) {
    if (ok_flags[i]) {
      view.subgraphs.push_back(std::move(subgraphs[i]));
    } else {
      ++skip_count;
      pattern_sets[i].clear();
    }
  }
  if (skipped) *skipped = skip_count;
  if (view.subgraphs.empty()) {
    return Status::FailedPrecondition(
        StrFormat("no feasible explanation subgraph for label %d", label));
  }
  view.patterns = MergePatternSets(pattern_sets);
  view.explainability = 0.0;
  for (const auto& s : view.subgraphs) view.explainability += s.explainability;
  return view;
}

Result<ExplanationView> StreamGvex::GenerateViewPartial(
    const GraphDatabase& db, int label, double fraction) const {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  std::vector<int> group = db.LabelGroup(label);
  if (group.empty()) {
    return Status::NotFound(StrFormat("label group %d is empty", label));
  }
  ExplanationView view;
  view.label = label;
  std::vector<std::vector<Pattern>> pattern_sets;
  for (int gidx : group) {
    const Graph& g = db.graph(gidx);
    if (g.num_nodes() == 0) continue;
    StreamGraphState state(model_, &g, gidx, label, &config_);
    const int limit = std::max(1, static_cast<int>(g.num_nodes() * fraction));
    for (NodeId v = 0; v < limit; ++v) state.ProcessNode(v);
    state.Finalize();
    auto snap = state.Snapshot();
    if (!snap.ok()) continue;
    view.subgraphs.push_back(std::move(snap).value());
    pattern_sets.push_back(state.patterns());
  }
  if (view.subgraphs.empty()) {
    return Status::FailedPrecondition(
        StrFormat("no feasible partial explanation for label %d", label));
  }
  view.patterns = MergePatternSets(pattern_sets);
  for (const auto& s : view.subgraphs) view.explainability += s.explainability;
  return view;
}

}  // namespace gvex
