// Procedure Psum (§4): summarize explanation subgraphs into a pattern set
// P^l that (1) covers every subgraph node and (2) approximately minimizes the
// total edge-miss weight  w(P) = 1 - |P_ES| / |E_S|  via greedy weighted set
// cover (H_{u_l}-approximation, Lemma 4.3).
//
// Complexity: with c mined candidates, k subgraphs, and m the cost of one
// ComputeCoverage pattern match, the coverage table costs O(c·k·m) and the
// greedy cover O(|P^l|·c·coverage-size); the coverage table dominates and is
// what the sharded parallel path (§A.7) splits across workers.
//
// Thread-safety: Psum is a pure function of its inputs — concurrent calls on
// distinct outputs are safe. When given a ThreadPool, candidate shards are
// processed into shard-local accumulators and merged in shard-index order at
// the pool barrier, so the result is bit-identical to the sequential path;
// the pool itself must not be used concurrently from other threads during
// the call.

#ifndef GVEX_EXPLAIN_PSUM_H_
#define GVEX_EXPLAIN_PSUM_H_

#include <vector>

#include "explain/config.h"
#include "graph/graph.h"
#include "pattern/miner.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace gvex {

class ThreadPool;

/// Output of the summary phase.
struct PsumResult {
  std::vector<Pattern> patterns;
  /// Distinct subgraph edges covered by the selected patterns.
  int covered_edges = 0;
  /// Total subgraph edges (|E_S|).
  int total_edges = 0;
  /// Whether every subgraph node ended up covered.
  bool full_node_coverage = false;

  /// Edge loss = fraction of E_S not covered (Fig. 8c/d metric).
  double EdgeLoss() const {
    return total_edges == 0
               ? 0.0
               : 1.0 - static_cast<double>(covered_edges) / total_edges;
  }
};

/// Runs PGen (pattern mining) + greedy weighted set cover over the given
/// explanation subgraphs. Guarantees node coverage by falling back to
/// single-node patterns, which always exist among the candidates.
///
/// `pool` (optional) parallelizes the dominant cost — the per-candidate
/// coverage table — by sharding candidates across the pool's workers with
/// shard-local accumulators merged deterministically at the barrier. The
/// result is identical to the sequential path (pool == nullptr).
Result<PsumResult> Psum(const std::vector<const Graph*>& subgraphs,
                        const Configuration& config,
                        ThreadPool* pool = nullptr);

/// Overload for owned graphs.
Result<PsumResult> Psum(const std::vector<Graph>& subgraphs,
                        const Configuration& config,
                        ThreadPool* pool = nullptr);

}  // namespace gvex

#endif  // GVEX_EXPLAIN_PSUM_H_
