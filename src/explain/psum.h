// Procedure Psum (§4): summarize explanation subgraphs into a pattern set
// P^l that (1) covers every subgraph node and (2) approximately minimizes the
// total edge-miss weight  w(P) = 1 - |P_ES| / |E_S|  via greedy weighted set
// cover (H_{u_l}-approximation, Lemma 4.3).

#ifndef GVEX_EXPLAIN_PSUM_H_
#define GVEX_EXPLAIN_PSUM_H_

#include <vector>

#include "explain/config.h"
#include "graph/graph.h"
#include "pattern/miner.h"
#include "pattern/pattern.h"
#include "util/status.h"

namespace gvex {

/// Output of the summary phase.
struct PsumResult {
  std::vector<Pattern> patterns;
  /// Distinct subgraph edges covered by the selected patterns.
  int covered_edges = 0;
  /// Total subgraph edges (|E_S|).
  int total_edges = 0;
  /// Whether every subgraph node ended up covered.
  bool full_node_coverage = false;

  /// Edge loss = fraction of E_S not covered (Fig. 8c/d metric).
  double EdgeLoss() const {
    return total_edges == 0
               ? 0.0
               : 1.0 - static_cast<double>(covered_edges) / total_edges;
  }
};

/// Runs PGen (pattern mining) + greedy weighted set cover over the given
/// explanation subgraphs. Guarantees node coverage by falling back to
/// single-node patterns, which always exist among the candidates.
Result<PsumResult> Psum(const std::vector<const Graph*>& subgraphs,
                        const Configuration& config);

/// Overload for owned graphs.
Result<PsumResult> Psum(const std::vector<Graph>& subgraphs,
                        const Configuration& config);

}  // namespace gvex

#endif  // GVEX_EXPLAIN_PSUM_H_
