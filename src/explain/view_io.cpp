#include "explain/view_io.h"

#include <fstream>
#include <sstream>

#include "graph/graph_io.h"
#include "util/string_util.h"

namespace gvex {

// Format:
//   view <label> <explainability> <num_patterns> <num_subgraphs>
//   pattern
//   <graph text>
//   subgraph <graph_index> <consistent> <counterfactual> <explainability>
//   nodes <id...>
//   <graph text>
//   endview

std::string SerializeView(const ExplanationView& view) {
  std::string out = StrFormat("view %d %.9g %zu %zu\n", view.label,
                              view.explainability, view.patterns.size(),
                              view.subgraphs.size());
  for (const Pattern& p : view.patterns) {
    out += "pattern\n";
    out += SerializeGraph(p.graph());
  }
  for (const ExplanationSubgraph& s : view.subgraphs) {
    out += StrFormat("subgraph %d %d %d %.9g\nnodes", s.graph_index,
                     s.consistent ? 1 : 0, s.counterfactual ? 1 : 0,
                     s.explainability);
    for (NodeId v : s.nodes) out += StrFormat(" %d", v);
    out += "\n";
    out += SerializeGraph(s.subgraph);
  }
  out += "endview\n";
  return out;
}

namespace {

// Pulls the next serialized graph block (up to and including "end") from the
// stream of lines starting at *pos; returns the parsed graph.
Result<Graph> ReadGraphBlock(const std::vector<std::string>& lines,
                             size_t* pos) {
  std::string block;
  bool ended = false;
  while (*pos < lines.size()) {
    const std::string& line = lines[*pos];
    block += line + "\n";
    ++*pos;
    if (Trim(line) == "end") {
      ended = true;
      break;
    }
  }
  if (!ended) return Status::InvalidArgument("unterminated graph block");
  auto parsed = ParseGraphs(block);
  if (!parsed.ok()) return parsed.status();
  if (parsed.value().size() != 1) {
    return Status::InvalidArgument("expected exactly one graph in block");
  }
  return std::move(parsed.value()[0].graph);
}

}  // namespace

Result<std::vector<ExplanationView>> ParseViews(const std::string& text) {
  std::vector<ExplanationView> views;
  std::vector<std::string> lines = Split(text, '\n');
  size_t pos = 0;
  while (pos < lines.size()) {
    std::string line = Trim(lines[pos]);
    if (line.empty()) {
      ++pos;
      continue;
    }
    auto head = SplitWhitespace(line);
    if (head.empty() || head[0] != "view" || head.size() < 5) {
      return Status::InvalidArgument(
          StrFormat("expected 'view' header at line %zu", pos + 1));
    }
    ExplanationView view;
    int num_patterns_int = 0;
    int num_subgraphs_int = 0;
    if (!ParseInt(head[1], &view.label) ||
        !ParseDouble(head[2], &view.explainability) ||
        !ParseInt(head[3], &num_patterns_int) || num_patterns_int < 0 ||
        !ParseInt(head[4], &num_subgraphs_int) || num_subgraphs_int < 0) {
      return Status::InvalidArgument(
          StrFormat("malformed 'view' header at line %zu", pos + 1));
    }
    ++pos;
    const size_t num_patterns = static_cast<size_t>(num_patterns_int);
    const size_t num_subgraphs = static_cast<size_t>(num_subgraphs_int);

    for (size_t i = 0; i < num_patterns; ++i) {
      if (pos >= lines.size() || Trim(lines[pos]) != "pattern") {
        return Status::InvalidArgument("expected 'pattern'");
      }
      ++pos;
      auto g = ReadGraphBlock(lines, &pos);
      if (!g.ok()) return g.status();
      auto p = Pattern::Create(std::move(g).value());
      if (!p.ok()) return p.status();
      view.patterns.push_back(std::move(p).value());
    }
    for (size_t i = 0; i < num_subgraphs; ++i) {
      if (pos >= lines.size()) {
        return Status::InvalidArgument("truncated view");
      }
      auto sub_head = SplitWhitespace(Trim(lines[pos]));
      if (sub_head.size() < 5 || sub_head[0] != "subgraph") {
        return Status::InvalidArgument("expected 'subgraph' header");
      }
      ExplanationSubgraph s;
      int consistent = 0;
      int counterfactual = 0;
      if (!ParseInt(sub_head[1], &s.graph_index) ||
          !ParseInt(sub_head[2], &consistent) ||
          !ParseInt(sub_head[3], &counterfactual) ||
          !ParseDouble(sub_head[4], &s.explainability)) {
        return Status::InvalidArgument("malformed 'subgraph' header");
      }
      s.consistent = consistent != 0;
      s.counterfactual = counterfactual != 0;
      ++pos;
      if (pos >= lines.size()) {
        return Status::InvalidArgument("truncated subgraph");
      }
      auto node_line = SplitWhitespace(Trim(lines[pos]));
      if (node_line.empty() || node_line[0] != "nodes") {
        return Status::InvalidArgument("expected 'nodes' line");
      }
      ++pos;
      for (size_t j = 1; j < node_line.size(); ++j) {
        int node = 0;
        if (!ParseInt(node_line[j], &node)) {
          return Status::InvalidArgument(
              StrFormat("malformed node id '%s'", node_line[j].c_str()));
        }
        s.nodes.push_back(node);
      }
      auto g = ReadGraphBlock(lines, &pos);
      if (!g.ok()) return g.status();
      s.subgraph = std::move(g).value();
      view.subgraphs.push_back(std::move(s));
    }
    if (pos >= lines.size() || Trim(lines[pos]) != "endview") {
      return Status::InvalidArgument("missing 'endview'");
    }
    ++pos;
    views.push_back(std::move(view));
  }
  return views;
}

Status SaveViews(const std::string& path,
                 const std::vector<ExplanationView>& views) {
  std::ofstream f(path);
  if (!f.good()) return Status::IOError("cannot open " + path);
  for (const auto& view : views) f << SerializeView(view);
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<ExplanationView>> LoadViews(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) return Status::IOError("cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ParseViews(ss.str());
}

}  // namespace gvex
