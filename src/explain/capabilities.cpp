#include "explain/capabilities.h"

namespace gvex {

std::vector<ExplainerCapabilities> CapabilityTable() {
  std::vector<ExplainerCapabilities> rows;
  rows.push_back({"SubgraphX", false, true, true, "Subgraph", true, false,
                  false, false, false, false});
  rows.push_back({"GNNExplainer", true, true, true, "Edge/Node Features",
                  true, false, false, false, false, false});
  rows.push_back({"PGExplainer", true, true, true, "Edges", false, false,
                  false, false, false, false});
  rows.push_back({"GStarX", false, true, false, "Subgraph", true, false,
                  false, false, false, false});
  rows.push_back({"GCFExplainer", false, true, false, "Subgraph", true, true,
                  false, true, false, false});
  rows.push_back({"GVEX", false, true, true, "Graph Views (Pattern+Subgraph)",
                  true, true, true, true, true, true});
  return rows;
}

}  // namespace gvex
