#include "explain/approx_gvex.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "explain/psum.h"
#include "explain/repair.h"
#include "explain/verify.h"
#include "graph/subgraph.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gvex {

ApproxGvex::ApproxGvex(const GnnClassifier* model, Configuration config)
    : model_(model), config_(std::move(config)) {}

Result<ExplanationSubgraph> ApproxGvex::ExplainGraph(const Graph& g,
                                                     int graph_index,
                                                     int label) const {
  GVEX_RETURN_NOT_OK(config_.Validate());
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("cannot explain an empty graph");
  }
  const CoverageBound& bound = config_.BoundFor(label);

  // Line 2: precompute influence / embeddings (the EVerify Jacobian pass).
  GraphScoringContext ctx(*model_, g, config_);
  ScoreState state(&ctx);

  std::vector<NodeId> vs;            // V_S: selected nodes
  std::vector<bool> selected(static_cast<size_t>(g.num_nodes()), false);
  std::vector<NodeId> vu;            // V_u: verified-but-unselected pool
  std::vector<bool> in_vu(static_cast<size_t>(g.num_nodes()), false);

  // Explanation phase (lines 3-9): greedy selection under VpExtend.
  while (static_cast<int>(vs.size()) < bound.upper) {
    // Rank remaining nodes by marginal gain; verify best-first so that the
    // selected node is the max-gain node that passes VpExtend.
    std::vector<std::pair<double, NodeId>> ranked;
    ranked.reserve(static_cast<size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!selected[static_cast<size_t>(v)]) {
        ranked.push_back({state.GainOf(v), v});
      }
    }
    if (ranked.empty()) break;
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    NodeId chosen = -1;
    for (const auto& [gain, v] : ranked) {
      if (VpExtend(*model_, g, vs, v, label, config_)) {
        chosen = v;
        break;
      }
      // Non-chosen verified candidates would belong to V_u as well, but we
      // only learn verification outcomes lazily; rejected nodes stay out.
    }
    if (chosen < 0) break;  // no extendable candidate remains
    // Pool bookkeeping: remaining ranked nodes become backfill candidates.
    for (const auto& [gain, v] : ranked) {
      if (v != chosen && !in_vu[static_cast<size_t>(v)]) {
        in_vu[static_cast<size_t>(v)] = true;
        vu.push_back(v);
      }
    }
    selected[static_cast<size_t>(chosen)] = true;
    if (in_vu[static_cast<size_t>(chosen)]) {
      in_vu[static_cast<size_t>(chosen)] = false;
      vu.erase(std::find(vu.begin(), vu.end(), chosen));
    }
    state.Add(chosen);
    vs.push_back(chosen);
  }

  // Lower-bound backfill (lines 10-15): keep greedily drawing from V_u.
  while (static_cast<int>(vs.size()) < bound.lower && !vu.empty()) {
    double best_gain = -1.0;
    size_t best_idx = 0;
    for (size_t i = 0; i < vu.size(); ++i) {
      double gain = state.GainOf(vu[i]);
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
      }
    }
    NodeId v = vu[best_idx];
    vu.erase(vu.begin() + static_cast<std::ptrdiff_t>(best_idx));
    in_vu[static_cast<size_t>(v)] = false;
    if (!VpExtend(*model_, g, vs, v, label, config_)) continue;
    selected[static_cast<size_t>(v)] = true;
    state.Add(v);
    vs.push_back(v);
  }

  // Lines 16-17: infeasible if the lower bound cannot be met.
  if (static_cast<int>(vs.size()) < bound.lower) {
    return Status::FailedPrecondition(
        StrFormat("no explanation of size >= %d for graph %d", bound.lower,
                  graph_index));
  }
  if (vs.empty()) {
    return Status::FailedPrecondition(
        StrFormat("no extendable node found for graph %d", graph_index));
  }

  // Counterfactual repair (see explain/repair.h): restore the feasibility
  // Algorithm 1 would otherwise report as ∅.
  if (config_.counterfactual_repair) {
    CounterfactualRepair(*model_, g, label, bound, config_.repair_budget,
                         &vs);
  }

  ExplanationSubgraph out;
  out.graph_index = graph_index;
  std::sort(vs.begin(), vs.end());
  out.nodes = vs;
  auto sub = ExtractInducedSubgraph(g, vs);
  if (!sub.ok()) return sub.status();
  out.subgraph = std::move(sub.value().graph);
  // Repair may have altered the set; evaluate f on the final selection.
  out.explainability = ScoreState::ScoreOfSet(ctx, vs);
  auto ev = EVerify(*model_, g, vs, label);
  if (ev.ok()) {
    out.consistent = ev.value().consistent;
    out.counterfactual = ev.value().counterfactual;
  }
  return out;
}

Result<ExplanationView> ApproxGvex::GenerateView(const GraphDatabase& db,
                                                 int label,
                                                 int* skipped) const {
  return GenerateViewImpl(db, label, /*pool=*/nullptr, skipped);
}

namespace {

// Shard-local accumulator for the explanation phase: one worker fills it by
// walking its contiguous slice of the label group in order. Because every
// accumulator preserves group order internally and accumulators are merged
// in shard-index order, the concatenation equals the sequential output.
struct ExplainShardAcc {
  std::vector<ExplanationSubgraph> subgraphs;
  int skipped = 0;
};

}  // namespace

Result<ExplanationView> ApproxGvex::GenerateViewImpl(const GraphDatabase& db,
                                                     int label,
                                                     ThreadPool* pool,
                                                     int* skipped) const {
  std::vector<int> group = db.LabelGroup(label);
  if (group.empty()) {
    return Status::NotFound(StrFormat("label group %d is empty", label));
  }
  ExplanationView view;
  view.label = label;

  // Explanation phase, sharded: batched shards (4x workers) let the pool
  // load-balance graphs of uneven size while the shard layout stays a pure
  // function of the group size.
  const int group_size = static_cast<int>(group.size());
  const int num_workers = pool != nullptr ? pool->num_threads() : 1;
  const int num_shards = num_workers > 1 ? num_workers * 4 : 1;
  std::vector<ExplainShardAcc> accs(
      ThreadPool::MakeShards(num_shards, group_size).size());
  auto explain_shard = [&](const Shard& shard) {
    ExplainShardAcc& acc = accs[static_cast<size_t>(shard.index)];
    for (int i = shard.begin; i < shard.end; ++i) {
      const int gi = group[static_cast<size_t>(i)];
      auto res = ExplainGraph(db.graph(gi), gi, label);
      if (res.ok()) {
        acc.subgraphs.push_back(std::move(res).value());
      } else {
        ++acc.skipped;
      }
    }
  };
  if (pool != nullptr && num_workers > 1) {
    pool->RunSharded(num_shards, group_size, explain_shard);
  } else {
    for (const Shard& shard : ThreadPool::MakeShards(num_shards, group_size)) {
      explain_shard(shard);
    }
  }

  // Barrier passed: deterministic merge in shard-index order.
  int skip_count = 0;
  for (ExplainShardAcc& acc : accs) {
    skip_count += acc.skipped;
    for (ExplanationSubgraph& s : acc.subgraphs) {
      view.subgraphs.push_back(std::move(s));
    }
  }
  if (skipped) *skipped = skip_count;
  if (view.subgraphs.empty()) {
    return Status::FailedPrecondition(
        StrFormat("no feasible explanation subgraph for label %d", label));
  }

  // Summary phase; the pool also shards Psum's candidate coverage table.
  std::vector<const Graph*> subs;
  subs.reserve(view.subgraphs.size());
  for (const auto& s : view.subgraphs) subs.push_back(&s.subgraph);
  auto psum = Psum(subs, config_, pool);
  if (!psum.ok()) return psum.status();
  view.patterns = std::move(psum.value().patterns);

  view.explainability = 0.0;
  for (const auto& s : view.subgraphs) view.explainability += s.explainability;
  return view;
}

Result<std::vector<ExplanationView>> ApproxGvex::GenerateViews(
    const GraphDatabase& db, const std::vector<int>& labels,
    int num_threads) const {
  // One pool for the whole call: workers are reused across every label's
  // explanation and summary phases instead of being respawned per label.
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  std::vector<ExplanationView> views;
  views.reserve(labels.size());
  for (int label : labels) {
    auto v = GenerateViewImpl(db, label, pool.get(), nullptr);
    if (!v.ok()) return v.status();
    views.push_back(std::move(v).value());
  }
  return views;
}

}  // namespace gvex
