#include "pattern/isomorphism.h"

#include <algorithm>

namespace gvex {

namespace {

// Backtracking matcher state. Pattern nodes are matched in a connectivity-
// aware static order (each next node is adjacent to an already-ordered node
// when possible) to keep the frontier connected.
class Matcher {
 public:
  Matcher(const Graph& pattern, const Graph& target,
          const MatchOptions& options)
      : p_(pattern), g_(target), opt_(options) {
    BuildOrder();
    mapping_.assign(static_cast<size_t>(p_.num_nodes()), -1);
    used_.assign(static_cast<size_t>(g_.num_nodes()), false);
  }

  std::vector<Match> Run(bool stop_at_first) {
    stop_at_first_ = stop_at_first;
    if (p_.num_nodes() <= g_.num_nodes()) Backtrack(0);
    return std::move(results_);
  }

 private:
  void BuildOrder() {
    const int np = p_.num_nodes();
    order_.clear();
    std::vector<bool> placed(static_cast<size_t>(np), false);
    // Start from the highest-degree node (most constrained first).
    int start = 0;
    for (int v = 1; v < np; ++v) {
      if (p_.degree(v) > p_.degree(start)) start = v;
    }
    order_.push_back(start);
    placed[static_cast<size_t>(start)] = true;
    while (static_cast<int>(order_.size()) < np) {
      int best = -1;
      int best_conn = -1;
      for (int v = 0; v < np; ++v) {
        if (placed[static_cast<size_t>(v)]) continue;
        int conn = 0;
        for (const Neighbor& nb : p_.neighbors(v)) {
          if (placed[static_cast<size_t>(nb.node)]) ++conn;
        }
        if (conn > best_conn ||
            (conn == best_conn && best != -1 &&
             p_.degree(v) > p_.degree(best))) {
          best = v;
          best_conn = conn;
        }
      }
      order_.push_back(best);
      placed[static_cast<size_t>(best)] = true;
    }
  }

  bool Feasible(int pv, NodeId gv, int depth) {
    if (p_.node_type(pv) != g_.node_type(gv)) return false;
    if (p_.degree(pv) > g_.degree(gv)) return false;
    // Check consistency against already-mapped pattern nodes.
    for (int i = 0; i < depth; ++i) {
      const int pu = order_[static_cast<size_t>(i)];
      const NodeId gu = mapping_[static_cast<size_t>(pu)];
      const bool p_edge = p_.HasEdge(pu, pv) || p_.HasEdge(pv, pu);
      const bool g_edge = g_.HasEdge(gu, gv) || g_.HasEdge(gv, gu);
      if (p_edge) {
        if (!g_edge) return false;
        // Edge types must agree (check both orientations for undirected).
        int pt = p_.EdgeType(pu, pv);
        if (pt < 0) pt = p_.EdgeType(pv, pu);
        int gt = g_.EdgeType(gu, gv);
        if (gt < 0) gt = g_.EdgeType(gv, gu);
        if (pt != gt) return false;
      } else if (opt_.semantics == MatchSemantics::kInduced && g_edge) {
        return false;
      }
    }
    return true;
  }

  // Returns false when the search should be aborted (budget / enough).
  bool Backtrack(int depth) {
    if (opt_.max_steps > 0 && ++steps_ > opt_.max_steps) return false;
    if (depth == p_.num_nodes()) {
      results_.push_back(mapping_);
      if (stop_at_first_) return false;
      if (opt_.max_matches > 0 &&
          static_cast<int>(results_.size()) >= opt_.max_matches) {
        return false;
      }
      return true;
    }
    const int pv = order_[static_cast<size_t>(depth)];
    // Candidate targets: neighbors of an already-mapped neighbor when one
    // exists (connectivity pruning), else all nodes.
    int anchor = -1;
    for (int i = 0; i < depth; ++i) {
      const int pu = order_[static_cast<size_t>(i)];
      if (p_.HasEdge(pu, pv) || p_.HasEdge(pv, pu)) {
        anchor = pu;
        break;
      }
    }
    if (anchor >= 0) {
      const NodeId ga = mapping_[static_cast<size_t>(anchor)];
      std::vector<NodeId> cands;
      for (const Neighbor& nb : g_.neighbors(ga)) cands.push_back(nb.node);
      if (g_.directed()) {
        // In-neighbors too: scan pattern anchor orientation via full check in
        // Feasible; here gather loosely.
        for (NodeId v = 0; v < g_.num_nodes(); ++v) {
          if (g_.HasEdge(v, ga)) cands.push_back(v);
        }
      }
      for (NodeId gv : cands) {
        if (used_[static_cast<size_t>(gv)]) continue;
        if (!Feasible(pv, gv, depth)) continue;
        mapping_[static_cast<size_t>(pv)] = gv;
        used_[static_cast<size_t>(gv)] = true;
        bool keep = Backtrack(depth + 1);
        used_[static_cast<size_t>(gv)] = false;
        mapping_[static_cast<size_t>(pv)] = -1;
        if (!keep) return false;
      }
    } else {
      for (NodeId gv = 0; gv < g_.num_nodes(); ++gv) {
        if (used_[static_cast<size_t>(gv)]) continue;
        if (!Feasible(pv, gv, depth)) continue;
        mapping_[static_cast<size_t>(pv)] = gv;
        used_[static_cast<size_t>(gv)] = true;
        bool keep = Backtrack(depth + 1);
        used_[static_cast<size_t>(gv)] = false;
        mapping_[static_cast<size_t>(pv)] = -1;
        if (!keep) return false;
      }
    }
    return true;
  }

  const Graph& p_;
  const Graph& g_;
  MatchOptions opt_;
  std::vector<int> order_;
  Match mapping_;
  std::vector<bool> used_;
  std::vector<Match> results_;
  int64_t steps_ = 0;
  bool stop_at_first_ = false;
};

}  // namespace

std::vector<Match> FindMatches(const Graph& pattern, const Graph& target,
                               const MatchOptions& options) {
  if (pattern.num_nodes() == 0) return {};
  Matcher m(pattern, target, options);
  return m.Run(/*stop_at_first=*/false);
}

bool ContainsPattern(const Graph& target, const Graph& pattern,
                     const MatchOptions& options) {
  if (pattern.num_nodes() == 0) return true;
  Matcher m(pattern, target, options);
  return !m.Run(/*stop_at_first=*/true).empty();
}

bool GraphsIsomorphic(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  MatchOptions opt;
  opt.semantics = MatchSemantics::kInduced;
  opt.max_matches = 1;
  return ContainsPattern(b, a, opt);
}

}  // namespace gvex
