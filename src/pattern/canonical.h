// Canonical codes for small labeled graphs, used to deduplicate mined
// patterns: two patterns receive the same code iff they are isomorphic.

#ifndef GVEX_PATTERN_CANONICAL_H_
#define GVEX_PATTERN_CANONICAL_H_

#include <string>

#include "graph/graph.h"

namespace gvex {

/// Computes a canonical string for `g` (node/edge types included).
/// Exact for any size, but cost grows with the number of automorphism-class
/// permutations; intended for pattern-sized graphs (<= ~10 nodes).
std::string CanonicalCode(const Graph& g);

}  // namespace gvex

#endif  // GVEX_PATTERN_CANONICAL_H_
