// gSpan-style pattern miner [Yan & Han, ICDM'02] — the algorithm the paper
// cites for PGen. Unlike the level-wise miner (which grows patterns one
// pendant node at a time and therefore only produces trees), this miner
// performs DFS-code-style *edge* extensions: forward extensions add a new
// typed node, backward extensions close cycles between existing pattern
// nodes. Cyclic patterns — e.g. the paper's carbon-ring pattern P32 — become
// minable. Candidates are deduplicated by canonical code; support pruning
// uses non-induced matching during growth (anti-monotone), while the
// reported statistics honor the configured semantics.

#ifndef GVEX_PATTERN_GSPAN_H_
#define GVEX_PATTERN_GSPAN_H_

#include <vector>

#include "graph/graph.h"
#include "pattern/miner.h"

namespace gvex {

/// Mines frequent connected patterns (trees AND cycles) from `graphs`.
/// Options are shared with the level-wise miner; `max_pattern_nodes` bounds
/// node count, and the number of extra back edges per pattern is bounded by
/// the pattern size.
std::vector<MinedPattern> MineGspan(const std::vector<const Graph*>& graphs,
                                    const MinerOptions& options = {});

/// Convenience overload for owned graphs.
std::vector<MinedPattern> MineGspan(const std::vector<Graph>& graphs,
                                    const MinerOptions& options = {});

}  // namespace gvex

#endif  // GVEX_PATTERN_GSPAN_H_
