// Subgraph isomorphism (the PMatch primitive of §4). VF2-style backtracking
// with node-type, edge-type, and degree pruning. Supports both induced
// semantics (non-edges of the pattern must map to non-edges — the paper's
// stated "node-induced subgraph isomorphism") and standard subgraph
// semantics.

#ifndef GVEX_PATTERN_ISOMORPHISM_H_
#define GVEX_PATTERN_ISOMORPHISM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gvex {

/// Matching semantics for pattern edges.
enum class MatchSemantics {
  kInduced,     // edge in P <=> edge in G between mapped nodes
  kNonInduced,  // edge in P  => edge in G
};

/// Options bounding a matching run.
struct MatchOptions {
  MatchSemantics semantics = MatchSemantics::kInduced;
  /// Stop after this many matches (0 = unlimited).
  int max_matches = 4096;
  /// Backtracking-step budget; guards worst cases (0 = unlimited).
  int64_t max_steps = 10'000'000;
};

/// One match: match[i] is the data-graph node that pattern node i maps to.
using Match = std::vector<NodeId>;

/// Enumerates matches of `pattern` into `target`.
std::vector<Match> FindMatches(const Graph& pattern, const Graph& target,
                               const MatchOptions& options = {});

/// True iff at least one match exists (early-exit search).
bool ContainsPattern(const Graph& target, const Graph& pattern,
                     const MatchOptions& options = {});

/// Full graph isomorphism test (same node count + induced matching).
bool GraphsIsomorphic(const Graph& a, const Graph& b);

}  // namespace gvex

#endif  // GVEX_PATTERN_ISOMORPHISM_H_
