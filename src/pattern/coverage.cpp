#include "pattern/coverage.h"

#include <algorithm>
#include <cassert>

namespace gvex {

int CoverageMask::CountNodes() const {
  return static_cast<int>(std::count(nodes.begin(), nodes.end(), true));
}

int CoverageMask::CountEdges() const {
  return static_cast<int>(std::count(edges.begin(), edges.end(), true));
}

bool CoverageMask::AllNodes() const {
  return std::all_of(nodes.begin(), nodes.end(), [](bool b) { return b; });
}

CoverageMask ComputeCoverage(const Pattern& pattern, const Graph& g,
                             const MatchOptions& options) {
  CoverageMask mask;
  mask.nodes.assign(static_cast<size_t>(g.num_nodes()), false);
  mask.edges.assign(static_cast<size_t>(g.num_edges()), false);
  auto matches = FindMatches(pattern.graph(), g, options);
  if (matches.empty()) return mask;
  // Index data edges for O(1) lookup by endpoints.
  for (const Match& m : matches) {
    for (NodeId v : m) mask.nodes[static_cast<size_t>(v)] = true;
    for (const Edge& pe : pattern.graph().edges()) {
      NodeId a = m[static_cast<size_t>(pe.u)];
      NodeId b = m[static_cast<size_t>(pe.v)];
      for (size_t ei = 0; ei < g.edges().size(); ++ei) {
        const Edge& ge = g.edges()[ei];
        if ((ge.u == a && ge.v == b) || (ge.u == b && ge.v == a)) {
          mask.edges[ei] = true;
          break;
        }
      }
    }
  }
  return mask;
}

CoverageMask ComputeCoverage(const std::vector<Pattern>& patterns,
                             const Graph& g, const MatchOptions& options) {
  CoverageMask total;
  total.nodes.assign(static_cast<size_t>(g.num_nodes()), false);
  total.edges.assign(static_cast<size_t>(g.num_edges()), false);
  for (const Pattern& p : patterns) {
    CoverageMask m = ComputeCoverage(p, g, options);
    MergeCoverage(m, &total);
  }
  return total;
}

void MergeCoverage(const CoverageMask& other, CoverageMask* base) {
  assert(other.nodes.size() == base->nodes.size());
  assert(other.edges.size() == base->edges.size());
  for (size_t i = 0; i < other.nodes.size(); ++i) {
    if (other.nodes[i]) base->nodes[i] = true;
  }
  for (size_t i = 0; i < other.edges.size(); ++i) {
    if (other.edges[i]) base->edges[i] = true;
  }
}

bool PatternsCoverAllNodes(const std::vector<Pattern>& patterns,
                           const std::vector<const Graph*>& graphs,
                           const MatchOptions& options) {
  for (const Graph* g : graphs) {
    if (g->num_nodes() == 0) continue;
    CoverageMask m = ComputeCoverage(patterns, *g, options);
    if (!m.AllNodes()) return false;
  }
  return true;
}

}  // namespace gvex
