#include "pattern/miner.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_set>

#include "pattern/canonical.h"
#include "pattern/gspan.h"

namespace gvex {

namespace {

// Key for a data edge within graph gi.
struct EdgeKey {
  int graph;
  NodeId u;
  NodeId v;
  bool operator<(const EdgeKey& o) const {
    if (graph != o.graph) return graph < o.graph;
    if (u != o.u) return u < o.u;
    return v < o.v;
  }
};

// Computes support + coverage of a candidate pattern over all graphs.
void CountSupport(const Graph& pattern,
                  const std::vector<const Graph*>& graphs,
                  const MinerOptions& opt, MinedPattern* out) {
  out->support = 0;
  out->total_matches = 0;
  std::set<std::pair<int, NodeId>> nodes_covered;
  std::set<EdgeKey> edges_covered;
  MatchOptions mopt;
  mopt.semantics = opt.semantics;
  mopt.max_matches = opt.max_matches_per_graph;
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = *graphs[gi];
    auto matches = FindMatches(pattern, g, mopt);
    if (matches.empty()) continue;
    ++out->support;
    out->total_matches += static_cast<int>(matches.size());
    for (const Match& m : matches) {
      for (NodeId v : m) nodes_covered.insert({static_cast<int>(gi), v});
      for (const Edge& pe : pattern.edges()) {
        NodeId a = m[static_cast<size_t>(pe.u)];
        NodeId b = m[static_cast<size_t>(pe.v)];
        if (a > b) std::swap(a, b);
        edges_covered.insert({static_cast<int>(gi), a, b});
      }
    }
  }
  out->covered_nodes = static_cast<int>(nodes_covered.size());
  out->covered_edges = static_cast<int>(edges_covered.size());
}

// Generates extensions of `base` by one node, guided by edges that actually
// occur in the data graphs (type-pair vocabulary).
struct ExtensionRule {
  int from_type;   // type of the existing endpoint
  int new_type;    // type of the added node
  int edge_type;
};

std::vector<ExtensionRule> CollectExtensionRules(
    const std::vector<const Graph*>& graphs) {
  std::set<std::tuple<int, int, int>> seen;
  for (const Graph* g : graphs) {
    for (const Edge& e : g->edges()) {
      seen.insert({g->node_type(e.u), g->node_type(e.v), e.edge_type});
      seen.insert({g->node_type(e.v), g->node_type(e.u), e.edge_type});
    }
  }
  std::vector<ExtensionRule> rules;
  rules.reserve(seen.size());
  for (const auto& [a, b, t] : seen) rules.push_back({a, b, t});
  return rules;
}

}  // namespace

std::vector<MinedPattern> MinePatterns(const std::vector<const Graph*>& graphs,
                                       const MinerOptions& options) {
  if (options.engine == MinerEngine::kGspan) {
    return MineGspan(graphs, options);
  }
  std::vector<MinedPattern> results;
  if (graphs.empty()) return results;

  // Level 1: single-node patterns for every node type in the data.
  std::set<int> types;
  for (const Graph* g : graphs) {
    for (NodeId v = 0; v < g->num_nodes(); ++v) types.insert(g->node_type(v));
  }
  std::unordered_set<std::string> seen_codes;
  std::vector<Pattern> frontier;
  for (int t : types) {
    Pattern p = Pattern::SingleNode(t);
    MinedPattern mp;
    CountSupport(p.graph(), graphs, options, &mp);
    if (mp.support < options.min_support) continue;
    mp.pattern = p;
    seen_codes.insert(p.canonical_code());
    results.push_back(mp);
    frontier.push_back(std::move(p));
  }

  const auto rules = CollectExtensionRules(graphs);

  // Level-wise growth.
  for (int level = 2; level <= options.max_pattern_nodes; ++level) {
    std::vector<Pattern> next_frontier;
    for (const Pattern& base : frontier) {
      const Graph& bg = base.graph();
      for (NodeId anchor = 0; anchor < bg.num_nodes(); ++anchor) {
        for (const ExtensionRule& rule : rules) {
          if (bg.node_type(anchor) != rule.from_type) continue;
          Graph cand = bg;
          NodeId nv = cand.AddNode(rule.new_type);
          if (!cand.AddEdge(anchor, nv, rule.edge_type).ok()) continue;
          auto pr = Pattern::Create(std::move(cand));
          if (!pr.ok()) continue;
          Pattern p = std::move(pr).value();
          if (seen_codes.count(p.canonical_code())) continue;
          seen_codes.insert(p.canonical_code());
          MinedPattern mp;
          CountSupport(p.graph(), graphs, options, &mp);
          if (mp.support < options.min_support) continue;
          mp.pattern = p;
          results.push_back(mp);
          next_frontier.push_back(std::move(p));
        }
      }
    }
    frontier = std::move(next_frontier);
    if (frontier.empty()) break;
  }

  if (options.min_pattern_nodes > 1) {
    results.erase(
        std::remove_if(results.begin(), results.end(),
                       [&](const MinedPattern& mp) {
                         return mp.pattern.num_nodes() <
                                options.min_pattern_nodes;
                       }),
        results.end());
  }
  std::sort(results.begin(), results.end(),
            [](const MinedPattern& a, const MinedPattern& b) {
              if (a.covered_nodes != b.covered_nodes) {
                return a.covered_nodes > b.covered_nodes;
              }
              if (a.pattern.num_nodes() != b.pattern.num_nodes()) {
                return a.pattern.num_nodes() < b.pattern.num_nodes();
              }
              return a.pattern.canonical_code() < b.pattern.canonical_code();
            });
  if (static_cast<int>(results.size()) > options.max_patterns) {
    results.resize(static_cast<size_t>(options.max_patterns));
  }
  return results;
}

std::vector<MinedPattern> MinePatterns(const std::vector<Graph>& graphs,
                                       const MinerOptions& options) {
  std::vector<const Graph*> ptrs;
  ptrs.reserve(graphs.size());
  for (const Graph& g : graphs) ptrs.push_back(&g);
  return MinePatterns(ptrs, options);
}

}  // namespace gvex
