#include "pattern/canonical.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace gvex {

namespace {

// Render the adjacency under a given node order.
std::string CodeUnderOrder(const Graph& g, const std::vector<int>& order) {
  const int n = g.num_nodes();
  std::vector<int> pos(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pos[static_cast<size_t>(order[static_cast<size_t>(i)])] = i;
  std::string code;
  for (int i = 0; i < n; ++i) {
    code += StrFormat("%d,", g.node_type(order[static_cast<size_t>(i)]));
  }
  code += "|";
  std::vector<std::string> edges;
  for (const Edge& e : g.edges()) {
    int a = pos[static_cast<size_t>(e.u)];
    int b = pos[static_cast<size_t>(e.v)];
    if (!g.directed() && a > b) std::swap(a, b);
    edges.push_back(StrFormat("%d-%d:%d", a, b, e.edge_type));
  }
  std::sort(edges.begin(), edges.end());
  code += Join(edges, ";");
  return code;
}

// Refined initial classes: (type, degree) signature. Permutations only swap
// nodes within the same class, cutting the factorial blowup.
void Permute(const Graph& g, std::vector<std::vector<int>>& classes,
             size_t class_idx, std::vector<int>* order, std::string* best) {
  if (class_idx == classes.size()) {
    std::string code = CodeUnderOrder(g, *order);
    if (best->empty() || code < *best) *best = std::move(code);
    return;
  }
  std::vector<int>& cls = classes[class_idx];
  std::sort(cls.begin(), cls.end());
  do {
    size_t base = order->size();
    for (int v : cls) order->push_back(v);
    Permute(g, classes, class_idx + 1, order, best);
    order->resize(base);
  } while (std::next_permutation(cls.begin(), cls.end()));
}

}  // namespace

std::string CanonicalCode(const Graph& g) {
  const int n = g.num_nodes();
  if (n == 0) return "empty";
  // Group nodes by (type, degree), sorted; permute within groups only.
  std::vector<std::pair<std::pair<int, int>, int>> sig;
  sig.reserve(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    sig.push_back({{g.node_type(v), g.degree(v)}, v});
  }
  std::sort(sig.begin(), sig.end());
  std::vector<std::vector<int>> classes;
  for (size_t i = 0; i < sig.size();) {
    std::vector<int> cls;
    auto key = sig[i].first;
    while (i < sig.size() && sig[i].first == key) {
      cls.push_back(sig[i].second);
      ++i;
    }
    classes.push_back(std::move(cls));
  }
  std::string best;
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  Permute(g, classes, 0, &order, &best);
  return best;
}

}  // namespace gvex
