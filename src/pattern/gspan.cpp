#include "pattern/gspan.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "pattern/canonical.h"
#include "pattern/isomorphism.h"

namespace gvex {

namespace {

// Support counting with a fixed semantics (non-induced during growth keeps
// the anti-monotone property; induced matching can gain matches as patterns
// grow, which would break pruning).
int CountSupport(const Graph& pattern, const std::vector<const Graph*>& graphs,
                 MatchSemantics semantics, int min_needed) {
  MatchOptions opt;
  opt.semantics = semantics;
  opt.max_matches = 1;
  int support = 0;
  const int remaining_possible = static_cast<int>(graphs.size());
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    if (support + (remaining_possible - static_cast<int>(gi)) < min_needed) {
      return support;  // cannot reach min_support anymore
    }
    if (ContainsPattern(*graphs[gi], pattern.num_nodes() == 0 ? pattern
                                                              : pattern,
                        opt)) {
      ++support;
    }
  }
  return support;
}

// Full statistics under the configured semantics (mirrors the level-wise
// miner's accounting).
void FillStats(const Graph& pattern, const std::vector<const Graph*>& graphs,
               const MinerOptions& opt, MinedPattern* out) {
  out->support = 0;
  out->total_matches = 0;
  std::set<std::pair<int, NodeId>> nodes_covered;
  std::set<std::tuple<int, NodeId, NodeId>> edges_covered;
  MatchOptions mopt;
  mopt.semantics = opt.semantics;
  mopt.max_matches = opt.max_matches_per_graph;
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    auto matches = FindMatches(pattern, *graphs[gi], mopt);
    if (matches.empty()) continue;
    ++out->support;
    out->total_matches += static_cast<int>(matches.size());
    for (const Match& m : matches) {
      for (NodeId v : m) nodes_covered.insert({static_cast<int>(gi), v});
      for (const Edge& pe : pattern.edges()) {
        NodeId a = m[static_cast<size_t>(pe.u)];
        NodeId b = m[static_cast<size_t>(pe.v)];
        if (a > b) std::swap(a, b);
        edges_covered.insert({static_cast<int>(gi), a, b});
      }
    }
  }
  out->covered_nodes = static_cast<int>(nodes_covered.size());
  out->covered_edges = static_cast<int>(edges_covered.size());
}

// Edge vocabulary (from_type, to_type, edge_type) present in the data.
struct EdgeRule {
  int a_type;
  int b_type;
  int edge_type;
};

std::vector<EdgeRule> CollectRules(const std::vector<const Graph*>& graphs) {
  std::set<std::tuple<int, int, int>> seen;
  for (const Graph* g : graphs) {
    for (const Edge& e : g->edges()) {
      seen.insert({g->node_type(e.u), g->node_type(e.v), e.edge_type});
      seen.insert({g->node_type(e.v), g->node_type(e.u), e.edge_type});
    }
  }
  std::vector<EdgeRule> rules;
  rules.reserve(seen.size());
  for (const auto& [a, b, t] : seen) rules.push_back({a, b, t});
  return rules;
}

}  // namespace

std::vector<MinedPattern> MineGspan(const std::vector<const Graph*>& graphs,
                                    const MinerOptions& options) {
  std::vector<MinedPattern> results;
  if (graphs.empty()) return results;

  const auto rules = CollectRules(graphs);
  std::unordered_set<std::string> seen_codes;

  // Seeds: single-node patterns per type.
  std::set<int> types;
  for (const Graph* g : graphs) {
    for (NodeId v = 0; v < g->num_nodes(); ++v) types.insert(g->node_type(v));
  }
  std::vector<Graph> frontier;
  auto accept = [&](Graph candidate) -> bool {
    std::string code = CanonicalCode(candidate);
    if (seen_codes.count(code)) return false;
    // Anti-monotone support pruning under non-induced semantics.
    const int support = CountSupport(candidate, graphs,
                                     MatchSemantics::kNonInduced,
                                     options.min_support);
    if (support < options.min_support) return false;
    seen_codes.insert(std::move(code));
    auto pattern = Pattern::Create(std::move(candidate));
    if (!pattern.ok()) return false;
    MinedPattern mp;
    FillStats(pattern.value().graph(), graphs, options, &mp);
    if (mp.support < options.min_support) {
      // Frequent non-induced but infrequent induced: still extend (children
      // may be induced-frequent), just do not report it.
      mp.support = 0;
    }
    frontier.push_back(pattern.value().graph());
    if (mp.support >= options.min_support) {
      mp.pattern = std::move(pattern).value();
      results.push_back(std::move(mp));
    }
    return true;
  };

  for (int t : types) {
    Graph g;
    g.AddNode(t);
    (void)accept(std::move(g));
  }

  // DFS-style worklist over edge extensions.
  size_t head = 0;
  while (head < frontier.size()) {
    Graph base = frontier[head++];
    // Forward extensions: attach a new node via a vocabulary edge.
    if (base.num_nodes() < options.max_pattern_nodes) {
      for (NodeId anchor = 0; anchor < base.num_nodes(); ++anchor) {
        for (const EdgeRule& rule : rules) {
          if (base.node_type(anchor) != rule.a_type) continue;
          Graph cand = base;
          NodeId nv = cand.AddNode(rule.b_type);
          if (!cand.AddEdge(anchor, nv, rule.edge_type).ok()) continue;
          (void)accept(std::move(cand));
        }
      }
    }
    // Backward extensions: close a cycle between existing pattern nodes.
    for (NodeId u = 0; u < base.num_nodes(); ++u) {
      for (NodeId v = u + 1; v < base.num_nodes(); ++v) {
        if (base.HasEdge(u, v)) continue;
        for (const EdgeRule& rule : rules) {
          if (base.node_type(u) != rule.a_type ||
              base.node_type(v) != rule.b_type) {
            continue;
          }
          Graph cand = base;
          if (!cand.AddEdge(u, v, rule.edge_type).ok()) continue;
          (void)accept(std::move(cand));
        }
      }
    }
    // Worklist guard: cap the explored space.
    if (frontier.size() > 4096) break;
  }

  if (options.min_pattern_nodes > 1) {
    results.erase(
        std::remove_if(results.begin(), results.end(),
                       [&](const MinedPattern& mp) {
                         return mp.pattern.num_nodes() <
                                options.min_pattern_nodes;
                       }),
        results.end());
  }
  std::sort(results.begin(), results.end(),
            [](const MinedPattern& a, const MinedPattern& b) {
              if (a.covered_nodes != b.covered_nodes) {
                return a.covered_nodes > b.covered_nodes;
              }
              if (a.pattern.num_nodes() != b.pattern.num_nodes()) {
                return a.pattern.num_nodes() < b.pattern.num_nodes();
              }
              return a.pattern.canonical_code() < b.pattern.canonical_code();
            });
  if (static_cast<int>(results.size()) > options.max_patterns) {
    results.resize(static_cast<size_t>(options.max_patterns));
  }
  return results;
}

std::vector<MinedPattern> MineGspan(const std::vector<Graph>& graphs,
                                    const MinerOptions& options) {
  std::vector<const Graph*> ptrs;
  ptrs.reserve(graphs.size());
  for (const Graph& g : graphs) ptrs.push_back(&g);
  return MineGspan(ptrs, options);
}

}  // namespace gvex
