// Graph patterns (§2.1): connected graphs with typed nodes and edges but no
// features. Patterns are the "higher tier" of an explanation view; they are
// matched into explanation subgraphs via node-induced subgraph isomorphism.

#ifndef GVEX_PATTERN_PATTERN_H_
#define GVEX_PATTERN_PATTERN_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gvex {

/// A graph pattern P(V_p, E_p, L_p). Thin wrapper over Graph that enforces
/// the pattern invariants (connected, no features) and carries the canonical
/// code used for deduplication.
class Pattern {
 public:
  Pattern() = default;

  /// Wraps a structure graph. Returns InvalidArgument if `g` is empty or
  /// disconnected (patterns must be connected per §2.1).
  static Result<Pattern> Create(Graph g);

  /// Builds a single-node pattern of the given type.
  static Pattern SingleNode(int node_type);

  const Graph& graph() const { return graph_; }
  int num_nodes() const { return graph_.num_nodes(); }
  int num_edges() const { return graph_.num_edges(); }

  /// Canonical code (computed lazily at Create); equal codes <=> isomorphic
  /// patterns (for the supported pattern sizes).
  const std::string& canonical_code() const { return code_; }

  /// Structural equality via canonical codes.
  bool IsomorphicTo(const Pattern& other) const {
    return code_ == other.code_;
  }

  /// Render like "P(n=3, m=2, types=[1,2,2])".
  std::string ToString() const;

 private:
  Graph graph_;
  std::string code_;
};

/// Named type vocabularies used by examples to pretty-print patterns
/// (e.g. atom symbols). Maps type id -> display name; ids outside the map
/// render as "t<id>".
std::string TypeName(const std::vector<std::string>& vocab, int type);

/// Renders a pattern using a node-type vocabulary, e.g. "N(-O)(-O)-C ring".
std::string RenderPattern(const Pattern& p,
                          const std::vector<std::string>& vocab);

}  // namespace gvex

#endif  // GVEX_PATTERN_PATTERN_H_
