// Frequent connected-pattern mining — the PGen operator of §4. A gSpan-style
// level-wise miner over a set of (small) explanation subgraphs: single-node
// patterns are grown one node at a time along edges present in the data,
// deduplicated by canonical code, and pruned by support (anti-monotone).
// MDL flavour: candidates are scored by how many data edges they describe,
// which Psum consumes as the weighted-set-cover weight.

#ifndef GVEX_PATTERN_MINER_H_
#define GVEX_PATTERN_MINER_H_

#include <vector>

#include "graph/graph.h"
#include "pattern/isomorphism.h"
#include "pattern/pattern.h"

namespace gvex {

/// Pattern-mining engine. kLevelWise grows patterns one pendant node at a
/// time (trees only; fast). kGspan additionally performs backward edge
/// extensions, so cyclic patterns (rings) are minable (see pattern/gspan.h).
enum class MinerEngine { kLevelWise, kGspan };

/// Mining knobs.
struct MinerOptions {
  MinerEngine engine = MinerEngine::kLevelWise;
  /// Minimum number of data graphs a pattern must occur in.
  int min_support = 1;
  /// Minimum pattern size (in nodes) to *report*. Smaller patterns are still
  /// grown internally; this filters the returned set (useful to surface
  /// motif-scale patterns on graphs with few node types, e.g. Fig. 11's
  /// star/biclique structures).
  int min_pattern_nodes = 1;
  /// Maximum pattern size in nodes.
  int max_pattern_nodes = 5;
  /// Maximum number of candidates returned (best-first by coverage).
  int max_patterns = 64;
  /// Cap on matches enumerated per (pattern, graph) during support counting.
  int max_matches_per_graph = 256;
  MatchSemantics semantics = MatchSemantics::kInduced;
};

/// A mined pattern with its support statistics over the input graphs.
struct MinedPattern {
  Pattern pattern;
  int support = 0;          // number of input graphs containing it
  int total_matches = 0;    // total embeddings found (capped)
  int covered_nodes = 0;    // distinct data nodes covered across all inputs
  int covered_edges = 0;    // distinct data edges covered across all inputs
};

/// Mines frequent connected patterns from `graphs`. Deterministic order:
/// descending covered_nodes, then fewer pattern nodes, then canonical code.
std::vector<MinedPattern> MinePatterns(const std::vector<const Graph*>& graphs,
                                       const MinerOptions& options = {});

/// Convenience overload for owned graphs.
std::vector<MinedPattern> MinePatterns(const std::vector<Graph>& graphs,
                                       const MinerOptions& options = {});

}  // namespace gvex

#endif  // GVEX_PATTERN_MINER_H_
