#include "pattern/matcher.h"

#include <algorithm>
#include <map>

#include "util/bitops.h"

namespace gvex {

namespace {

// (neighbor node type, edge type) -> count. Small graphs, few distinct
// keys: an ordered map keeps the comparison loop trivial.
using Signature = std::map<std::pair<int, int>, int>;

// Distinct incident neighbors per node — BOTH orientations for directed
// graphs. The blind matcher (the semantics we must reproduce exactly)
// accepts a target edge of either orientation for a directed pattern edge,
// so every structural filter here must look at the symmetric closure or it
// over-prunes candidates the blind matcher accepts.
std::vector<std::vector<NodeId>> IncidentNeighbors(const Graph& g) {
  std::vector<std::vector<NodeId>> nbrs(
      static_cast<size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      nbrs[static_cast<size_t>(v)].push_back(nb.node);
      if (g.directed()) nbrs[static_cast<size_t>(nb.node)].push_back(v);
    }
  }
  if (g.directed()) {
    // Dedupe pairs connected in both orientations.
    for (auto& list : nbrs) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
  }
  return nbrs;
}

// Undirected graphs key on (neighbor type, edge type). Directed graphs key
// on neighbor type only: the blind matcher resolves a directed pair's
// effective edge type orientation- (and placement-order-) dependently, so
// edge type cannot soundly constrain a directed signature.
Signature NeighborSignature(const Graph& g, NodeId v,
                            const std::vector<std::vector<NodeId>>& nbrs) {
  Signature sig;
  if (g.directed()) {
    for (NodeId u : nbrs[static_cast<size_t>(v)]) {
      ++sig[{g.node_type(u), 0}];
    }
  } else {
    for (const Neighbor& nb : g.neighbors(v)) {
      ++sig[{g.node_type(nb.node), nb.edge_type}];
    }
  }
  return sig;
}

// Every key of `need` present in `have` with at least the needed count.
bool SignatureCovers(const Signature& have, const Signature& need) {
  for (const auto& [key, count] : need) {
    auto it = have.find(key);
    if (it == have.end() || it->second < count) return false;
  }
  return true;
}

// Placement ranks of the blind matcher (isomorphism.cpp BuildOrder:
// highest-degree start, then most placed out-neighbors, degree tie-break).
// The blind accept predicate resolves a pair's effective edge type from the
// EARLIER-placed node's perspective, which matters when a pair is connected
// in both orientations with different types — so to reproduce its match set
// exactly while searching in a different order, Feasible below assigns pair
// roles by these ranks, not by our own placement order.
std::vector<int> BlindRank(const Graph& p) {
  const int np = p.num_nodes();
  std::vector<int> rank(static_cast<size_t>(np), 0);
  if (np == 0) return rank;
  std::vector<bool> placed(static_cast<size_t>(np), false);
  int start = 0;
  for (int v = 1; v < np; ++v) {
    if (p.degree(v) > p.degree(start)) start = v;
  }
  placed[static_cast<size_t>(start)] = true;
  int next_rank = 0;
  rank[static_cast<size_t>(start)] = next_rank++;
  while (next_rank < np) {
    int best = -1;
    int best_conn = -1;
    for (int v = 0; v < np; ++v) {
      if (placed[static_cast<size_t>(v)]) continue;
      int conn = 0;
      for (const Neighbor& nb : p.neighbors(v)) {
        if (placed[static_cast<size_t>(nb.node)]) ++conn;
      }
      if (conn > best_conn ||
          (conn == best_conn && best != -1 &&
           p.degree(v) > p.degree(best))) {
        best = v;
        best_conn = conn;
      }
    }
    placed[static_cast<size_t>(best)] = true;
    rank[static_cast<size_t>(best)] = next_rank++;
  }
  return rank;
}

// Shared state for one filtered run: candidate bitsets over target nodes,
// target adjacency bitsets, and the backtracking machinery.
class FilteredMatcher {
 public:
  FilteredMatcher(const Graph& pattern, const Graph& target,
                  const MatchOptions& options, MatcherStats* stats)
      : p_(pattern), g_(target), opt_(options), stats_(stats) {}

  // Phase 1: label + degree + signature filter, then Ullmann refinement.
  // Returns false when some pattern node has no surviving candidate.
  bool Filter() {
    const int np = p_.num_nodes();
    const int nt = g_.num_nodes();
    words_ = bitops::WordsForBits(static_cast<size_t>(nt));
    cand_.assign(static_cast<size_t>(np),
                 std::vector<uint64_t>(words_, 0));
    if (np > nt) return false;

    p_nbrs_ = IncidentNeighbors(p_);
    const std::vector<std::vector<NodeId>> g_nbrs = IncidentNeighbors(g_);
    std::vector<Signature> target_sig;
    target_sig.reserve(static_cast<size_t>(nt));
    for (NodeId v = 0; v < nt; ++v) {
      target_sig.push_back(NeighborSignature(g_, v, g_nbrs));
    }
    bool any_empty = false;
    for (int pv = 0; pv < np; ++pv) {
      const Signature psig = NeighborSignature(p_, pv, p_nbrs_);
      bool empty = true;
      for (NodeId gv = 0; gv < nt; ++gv) {
        if (p_.node_type(pv) != g_.node_type(gv)) continue;
        // The blind matcher enforces out-degree(pv) <= out-degree(gv) at
        // every placement; reproduce it so no extra matches appear.
        if (p_.degree(pv) > g_.degree(gv)) continue;
        // Distinct pattern neighbors also map injectively to distinct
        // target neighbors (incident count — both orientations, see
        // IncidentNeighbors).
        if (p_nbrs_[static_cast<size_t>(pv)].size() >
            g_nbrs[static_cast<size_t>(gv)].size()) {
          continue;
        }
        if (!SignatureCovers(target_sig[static_cast<size_t>(gv)], psig)) {
          continue;
        }
        bitops::SetBit(cand_[static_cast<size_t>(pv)].data(),
                       static_cast<size_t>(gv));
        empty = false;
      }
      any_empty = any_empty || empty;
    }
    if (any_empty) return false;

    // Target adjacency as bitsets — symmetric closure, since a directed
    // pattern edge may map onto a target edge of either orientation.
    adj_.assign(static_cast<size_t>(nt), std::vector<uint64_t>(words_, 0));
    for (NodeId v = 0; v < nt; ++v) {
      for (const Neighbor& nb : g_.neighbors(v)) {
        bitops::SetBit(adj_[static_cast<size_t>(v)].data(),
                       static_cast<size_t>(nb.node));
        bitops::SetBit(adj_[static_cast<size_t>(nb.node)].data(),
                       static_cast<size_t>(v));
      }
    }

    // Ullmann refinement to a fixpoint: gv stays a candidate for pv only
    // while every pattern neighbor pu of pv (either orientation) still has
    // a candidate among gv's neighbors. Sound: in any match pv->gv, pu
    // maps to such a node, so a refuted gv can appear in no match.
    bool changed = true;
    while (changed) {
      changed = false;
      for (int pv = 0; pv < np; ++pv) {
        std::vector<uint64_t>& cands = cand_[static_cast<size_t>(pv)];
        bool empty = true;
        for (size_t wi = 0; wi < words_; ++wi) {
          uint64_t w = cands[wi];
          while (w != 0) {
            const size_t gv =
                (wi << 6) +
                static_cast<size_t>(__builtin_ctzll(w));
            w &= w - 1;
            bool ok = true;
            for (NodeId pu : p_nbrs_[static_cast<size_t>(pv)]) {
              if (!bitops::Intersects(cand_[static_cast<size_t>(pu)],
                                      adj_[gv])) {
                ok = false;
                break;
              }
            }
            if (!ok) {
              cands[wi] &= ~(uint64_t{1} << (gv & 63));
              changed = true;
            }
          }
          if (cands[wi] != 0) empty = false;
        }
        if (empty) return false;
      }
    }

    if (stats_ != nullptr) {
      for (const auto& bits : cand_) {
        stats_->candidates += bitops::Popcount(bits);
      }
    }
    return true;
  }

  // Phase 2: backtracking over the surviving candidates,
  // most-constrained-first. Returns the verdict; matches land in results().
  MatchVerdict Search(bool stop_at_first) {
    stop_at_first_ = stop_at_first;
    BuildOrder();
    blind_rank_ = BlindRank(p_);
    // Graph::HasEdge/EdgeType scan an adjacency list per call, and the
    // backtracking inner loop issues several per placed pair. Replace them
    // with dense O(1) row-major tables (exact mirrors of the adjacency
    // lists) while the quadratic footprint stays small.
    if (p_.num_nodes() <= kDenseLookupMaxNodes) {
      BuildEdgeTables(p_, &p_has_, &p_et_);
    }
    if (g_.num_nodes() <= kDenseLookupMaxNodes) {
      BuildEdgeTables(g_, &g_has_, &g_et_);
    }
    mapping_.assign(static_cast<size_t>(p_.num_nodes()), -1);
    used_.assign(static_cast<size_t>(g_.num_nodes()), false);
    const bool completed = Backtrack(0);
    if (stats_ != nullptr) stats_->steps = steps_;
    if (!results_.empty()) return MatchVerdict::kMatch;
    // An aborted search that found nothing proves nothing — unless the
    // abort reason was "enough matches", impossible with zero results.
    return completed ? MatchVerdict::kNoMatch : MatchVerdict::kUnknown;
  }

  std::vector<Match> TakeResults() { return std::move(results_); }
  bool budget_exhausted() const { return budget_exhausted_; }
  const std::vector<std::vector<uint64_t>>& candidate_bits() const {
    return cand_;
  }

 private:
  // Past this many nodes the n*n tables stop being worth their footprint;
  // the helpers below fall back to the (identical) adjacency-list scans.
  static constexpr int kDenseLookupMaxNodes = 512;

  static void BuildEdgeTables(const Graph& g, std::vector<uint8_t>* has,
                              std::vector<int32_t>* et) {
    const size_t n = static_cast<size_t>(g.num_nodes());
    has->assign(n * n, 0);
    et->assign(n * n, -1);
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      for (const Neighbor& nb : g.neighbors(u)) {
        (*has)[static_cast<size_t>(u) * n + static_cast<size_t>(nb.node)] =
            1;
        (*et)[static_cast<size_t>(u) * n + static_cast<size_t>(nb.node)] =
            nb.edge_type;
      }
    }
  }

  bool PHas(int u, int v) const {
    if (p_has_.empty()) return p_.HasEdge(u, v);
    return p_has_[static_cast<size_t>(u) *
                      static_cast<size_t>(p_.num_nodes()) +
                  static_cast<size_t>(v)] != 0;
  }
  int PEt(int u, int v) const {
    if (p_et_.empty()) return p_.EdgeType(u, v);
    return p_et_[static_cast<size_t>(u) *
                     static_cast<size_t>(p_.num_nodes()) +
                 static_cast<size_t>(v)];
  }
  bool GHas(NodeId u, NodeId v) const {
    if (g_has_.empty()) return g_.HasEdge(u, v);
    return g_has_[static_cast<size_t>(u) *
                      static_cast<size_t>(g_.num_nodes()) +
                  static_cast<size_t>(v)] != 0;
  }
  int GEt(NodeId u, NodeId v) const {
    if (g_et_.empty()) return g_.EdgeType(u, v);
    return g_et_[static_cast<size_t>(u) *
                     static_cast<size_t>(g_.num_nodes()) +
                 static_cast<size_t>(v)];
  }

  size_t CandCount(int pv) const {
    return bitops::Popcount(cand_[static_cast<size_t>(pv)]);
  }

  // Static order: start at the node with the fewest candidates; extend
  // connectivity-first (most placed neighbors), tie-breaking on candidate
  // count then degree, so the frontier stays maximally constrained.
  void BuildOrder() {
    const int np = p_.num_nodes();
    order_.clear();
    std::vector<bool> placed(static_cast<size_t>(np), false);
    int start = 0;
    for (int v = 1; v < np; ++v) {
      const size_t cv = CandCount(v);
      const size_t cs = CandCount(start);
      if (cv < cs || (cv == cs && p_.degree(v) > p_.degree(start))) {
        start = v;
      }
    }
    order_.push_back(start);
    placed[static_cast<size_t>(start)] = true;
    while (static_cast<int>(order_.size()) < np) {
      int best = -1;
      int best_conn = -1;
      size_t best_cands = 0;
      for (int v = 0; v < np; ++v) {
        if (placed[static_cast<size_t>(v)]) continue;
        int conn = 0;
        for (const Neighbor& nb : p_.neighbors(v)) {
          if (placed[static_cast<size_t>(nb.node)]) ++conn;
        }
        const size_t cands = CandCount(v);
        if (conn > best_conn ||
            (conn == best_conn &&
             (cands < best_cands ||
              (cands == best_cands && best != -1 &&
               p_.degree(v) > p_.degree(best))))) {
          best = v;
          best_conn = conn;
          best_cands = cands;
        }
      }
      order_.push_back(best);
      placed[static_cast<size_t>(best)] = true;
    }
  }

  bool Feasible(int pv, NodeId gv, int depth) {
    // Type/degree/signature already vetted by the candidate set; only the
    // consistency against mapped neighbors remains. Pair roles follow the
    // BLIND matcher's placement ranks (see BlindRank) so the effective
    // edge type of a both-orientation pair resolves identically.
    for (int i = 0; i < depth; ++i) {
      int pa = order_[static_cast<size_t>(i)];
      int pb = pv;
      NodeId ga = mapping_[static_cast<size_t>(pa)];
      NodeId gb = gv;
      if (blind_rank_[static_cast<size_t>(pb)] <
          blind_rank_[static_cast<size_t>(pa)]) {
        std::swap(pa, pb);
        std::swap(ga, gb);
      }
      const bool p_edge = PHas(pa, pb) || PHas(pb, pa);
      // adj_ is the symmetric closure of target edge existence, so one bit
      // test replaces HasEdge(ga, gb) || HasEdge(gb, ga).
      const bool g_edge = bitops::TestBit(adj_[static_cast<size_t>(ga)].data(),
                                          static_cast<size_t>(gb));
      if (p_edge) {
        if (!g_edge) return false;
        int pt = PEt(pa, pb);
        if (pt < 0) pt = PEt(pb, pa);
        int gt = GEt(ga, gb);
        if (gt < 0) gt = GEt(gb, ga);
        if (pt != gt) return false;
      } else if (opt_.semantics == MatchSemantics::kInduced && g_edge) {
        return false;
      }
    }
    return true;
  }

  bool TryCandidate(int pv, NodeId gv, int depth) {
    if (used_[static_cast<size_t>(gv)]) return true;
    if (!bitops::TestBit(cand_[static_cast<size_t>(pv)].data(),
                         static_cast<size_t>(gv))) {
      return true;
    }
    if (!Feasible(pv, gv, depth)) return true;
    mapping_[static_cast<size_t>(pv)] = gv;
    used_[static_cast<size_t>(gv)] = true;
    const bool keep = Backtrack(depth + 1);
    used_[static_cast<size_t>(gv)] = false;
    mapping_[static_cast<size_t>(pv)] = -1;
    return keep;
  }

  // Returns false when the search should stop (budget or enough matches).
  bool Backtrack(int depth) {
    if (opt_.max_steps > 0 && ++steps_ > opt_.max_steps) {
      budget_exhausted_ = true;
      return false;
    }
    if (depth == p_.num_nodes()) {
      results_.push_back(mapping_);
      if (stop_at_first_) return false;
      if (opt_.max_matches > 0 &&
          static_cast<int>(results_.size()) >= opt_.max_matches) {
        return false;
      }
      return true;
    }
    const int pv = order_[static_cast<size_t>(depth)];
    int anchor = -1;
    for (int i = 0; i < depth; ++i) {
      const int pu = order_[static_cast<size_t>(i)];
      if (PHas(pu, pv) || PHas(pv, pu)) {
        anchor = pu;
        break;
      }
    }
    if (anchor >= 0) {
      // Anchored: only neighbors of the anchor's image can work; intersect
      // that neighborhood with pv's candidate set via the O(1) bit test.
      const NodeId ga = mapping_[static_cast<size_t>(anchor)];
      for (const Neighbor& nb : g_.neighbors(ga)) {
        if (!TryCandidate(pv, nb.node, depth)) return false;
      }
      if (g_.directed()) {
        // Pure in-neighbors only: a both-orientation neighbor was already
        // tried above, and trying it again would emit duplicate matches
        // (the blind matcher does — we do not).
        for (NodeId gv = 0; gv < g_.num_nodes(); ++gv) {
          if (GHas(gv, ga) && !GHas(ga, gv) &&
              !TryCandidate(pv, gv, depth)) {
            return false;
          }
        }
      }
    } else {
      // Unanchored (first node, or a disconnected pattern component):
      // iterate the candidate set itself, one ctz per candidate.
      const std::vector<uint64_t>& cands = cand_[static_cast<size_t>(pv)];
      for (size_t wi = 0; wi < words_; ++wi) {
        uint64_t w = cands[wi];
        while (w != 0) {
          const NodeId gv = static_cast<NodeId>(
              (wi << 6) + static_cast<size_t>(__builtin_ctzll(w)));
          w &= w - 1;
          if (!TryCandidate(pv, gv, depth)) return false;
        }
      }
    }
    return true;
  }

  const Graph& p_;
  const Graph& g_;
  MatchOptions opt_;
  MatcherStats* stats_;
  size_t words_ = 0;
  std::vector<std::vector<uint64_t>> cand_;  // per pattern node
  std::vector<std::vector<uint64_t>> adj_;   // per target node
  std::vector<std::vector<NodeId>> p_nbrs_;  // incident, both orientations
  std::vector<uint8_t> p_has_;   // dense n*n edge existence (see PHas)
  std::vector<int32_t> p_et_;    // dense n*n edge types, -1 = none
  std::vector<uint8_t> g_has_;
  std::vector<int32_t> g_et_;
  std::vector<int> order_;
  std::vector<int> blind_rank_;
  Match mapping_;
  std::vector<bool> used_;
  std::vector<Match> results_;
  int64_t steps_ = 0;
  bool stop_at_first_ = false;
  bool budget_exhausted_ = false;
};

// Shared driver: filter, then search. `verdict_mode` controls whether an
// exhausted budget reports kUnknown (true) or degrades to "no match"
// (false, the ContainsPattern-compatible behavior).
MatchVerdict RunFiltered(const Graph& pattern, const Graph& target,
                         const MatchOptions& options, bool stop_at_first,
                         MatcherStats* stats, std::vector<Match>* matches) {
  FilteredMatcher m(pattern, target, options, stats);
  if (!m.Filter()) {
    if (stats != nullptr) stats->filtered_out = true;
    return MatchVerdict::kNoMatch;
  }
  const MatchVerdict verdict = m.Search(stop_at_first);
  if (matches != nullptr) *matches = m.TakeResults();
  return verdict;
}

}  // namespace

bool BuildCandidateSets(const Graph& pattern, const Graph& target,
                        std::vector<std::vector<NodeId>>* candidates) {
  MatchOptions options;
  FilteredMatcher m(pattern, target, options, nullptr);
  const bool feasible = m.Filter();
  candidates->assign(static_cast<size_t>(pattern.num_nodes()), {});
  for (size_t pv = 0; pv < m.candidate_bits().size(); ++pv) {
    bitops::ForEachSetBit(m.candidate_bits()[pv], [&](size_t gv) {
      (*candidates)[pv].push_back(static_cast<NodeId>(gv));
    });
  }
  return feasible;
}

std::vector<Match> FilteredFindMatches(const Graph& pattern,
                                       const Graph& target,
                                       const MatchOptions& options,
                                       MatcherStats* stats) {
  if (pattern.num_nodes() == 0) return {};
  std::vector<Match> matches;
  (void)RunFiltered(pattern, target, options, /*stop_at_first=*/false,
                    stats, &matches);
  return matches;
}

bool FilteredContainsPattern(const Graph& target, const Graph& pattern,
                             const MatchOptions& options,
                             MatcherStats* stats) {
  if (pattern.num_nodes() == 0) return true;
  return RunFiltered(pattern, target, options, /*stop_at_first=*/true,
                     stats, nullptr) == MatchVerdict::kMatch;
}

MatchVerdict FilteredContainsPatternBudgeted(const Graph& target,
                                             const Graph& pattern,
                                             const MatchOptions& options,
                                             MatcherStats* stats) {
  if (pattern.num_nodes() == 0) return MatchVerdict::kMatch;
  return RunFiltered(pattern, target, options, /*stop_at_first=*/true,
                     stats, nullptr);
}

// --- McSplit-style maximum common subgraph ------------------------------

namespace {

// One label class: nodes of `a` (left) and `b` (right) that are pairwise
// compatible — same node type initially, refined by identical adjacency
// (presence + edge type) to every mapped pair.
struct LabelClass {
  std::vector<NodeId> left;
  std::vector<NodeId> right;
};

class McsSearcher {
 public:
  McsSearcher(const Graph& a, const Graph& b, const McsOptions& opt)
      : a_(a), b_(b), opt_(opt) {}

  McsResult Run() {
    // Initial partition by node type.
    std::map<int, LabelClass> by_type;
    for (NodeId v = 0; v < a_.num_nodes(); ++v) {
      by_type[a_.node_type(v)].left.push_back(v);
    }
    for (NodeId v = 0; v < b_.num_nodes(); ++v) {
      by_type[b_.node_type(v)].right.push_back(v);
    }
    std::vector<LabelClass> classes;
    for (auto& [type, cls] : by_type) {
      (void)type;
      if (!cls.left.empty() && !cls.right.empty()) {
        classes.push_back(std::move(cls));
      }
    }
    Search(classes);
    McsResult out;
    out.size = static_cast<int>(best_.size());
    out.exact = !exhausted_ && !stopped_;
    out.mapping = std::move(best_);
    std::sort(out.mapping.begin(), out.mapping.end());
    out.steps = steps_;
    return out;
  }

 private:
  // -1 encodes "no edge"; otherwise the edge type (checked both
  // orientations so undirected storage direction does not matter).
  int EdgeKey(const Graph& g, NodeId u, NodeId v) const {
    int t = g.EdgeType(u, v);
    if (t < 0 && !g.directed()) t = g.EdgeType(v, u);
    return t;
  }

  void Search(const std::vector<LabelClass>& classes) {
    if (stopped_ || exhausted_) return;
    if (opt_.max_steps > 0 && ++steps_ > opt_.max_steps) {
      exhausted_ = true;
      return;
    }
    if (current_.size() > best_.size()) {
      best_ = current_;
      if (opt_.target_size > 0 &&
          static_cast<int>(best_.size()) >= opt_.target_size) {
        stopped_ = true;
        return;
      }
    }
    // Soft bound: every class can contribute at most min(|left|, |right|).
    size_t bound = current_.size();
    for (const LabelClass& cls : classes) {
      bound += std::min(cls.left.size(), cls.right.size());
    }
    if (bound <= best_.size()) return;

    // min_max branching: the class with the smallest larger side.
    int pick = -1;
    size_t pick_metric = 0;
    for (size_t i = 0; i < classes.size(); ++i) {
      const size_t metric =
          std::max(classes[i].left.size(), classes[i].right.size());
      if (pick < 0 || metric < pick_metric) {
        pick = static_cast<int>(i);
        pick_metric = metric;
      }
    }
    if (pick < 0) return;
    const LabelClass& cls = classes[static_cast<size_t>(pick)];
    // Branch vertex: highest degree in `a` (most constraining), id tie.
    NodeId v = cls.left[0];
    for (NodeId u : cls.left) {
      if (a_.degree(u) > a_.degree(v)) v = u;
    }

    for (NodeId w : cls.right) {
      current_.emplace_back(v, w);
      // Split every class by adjacency (presence + edge type) to (v, w).
      std::vector<LabelClass> next;
      for (size_t i = 0; i < classes.size(); ++i) {
        const LabelClass& c = classes[static_cast<size_t>(i)];
        std::map<int, LabelClass> split;
        for (NodeId u : c.left) {
          if (u == v) continue;
          split[EdgeKey(a_, v, u)].left.push_back(u);
        }
        for (NodeId x : c.right) {
          if (x == w) continue;
          split[EdgeKey(b_, w, x)].right.push_back(x);
        }
        for (auto& [key, sub] : split) {
          (void)key;
          if (!sub.left.empty() && !sub.right.empty()) {
            next.push_back(std::move(sub));
          }
        }
      }
      Search(next);
      current_.pop_back();
      if (stopped_ || exhausted_) return;
    }

    // Branch with v unmatched: drop it from its class.
    std::vector<LabelClass> without = classes;
    LabelClass& mine = without[static_cast<size_t>(pick)];
    mine.left.erase(std::find(mine.left.begin(), mine.left.end(), v));
    if (!mine.left.empty()) {
      Search(without);
    } else {
      without.erase(without.begin() + pick);
      Search(without);
    }
  }

  const Graph& a_;
  const Graph& b_;
  McsOptions opt_;
  int64_t steps_ = 0;
  bool exhausted_ = false;
  bool stopped_ = false;
  std::vector<std::pair<NodeId, NodeId>> current_, best_;
};

}  // namespace

McsResult MaxCommonSubgraph(const Graph& a, const Graph& b,
                            const McsOptions& options) {
  McsSearcher searcher(a, b, options);
  return searcher.Run();
}

}  // namespace gvex
