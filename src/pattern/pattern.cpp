#include "pattern/pattern.h"

#include "graph/connectivity.h"
#include "pattern/canonical.h"
#include "util/string_util.h"

namespace gvex {

Result<Pattern> Pattern::Create(Graph g) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("pattern must be non-empty");
  }
  if (!IsConnected(g)) {
    return Status::InvalidArgument("pattern must be connected");
  }
  Pattern p;
  p.code_ = CanonicalCode(g);
  p.graph_ = std::move(g);
  return p;
}

Pattern Pattern::SingleNode(int node_type) {
  Graph g;
  g.AddNode(node_type);
  auto r = Create(std::move(g));
  return std::move(r).value();
}

std::string Pattern::ToString() const {
  std::string types = "[";
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (v > 0) types += ",";
    types += StrFormat("%d", graph_.node_type(v));
  }
  types += "]";
  return StrFormat("P(n=%d, m=%d, types=%s)", num_nodes(), num_edges(),
                   types.c_str());
}

std::string TypeName(const std::vector<std::string>& vocab, int type) {
  if (type >= 0 && type < static_cast<int>(vocab.size())) {
    return vocab[static_cast<size_t>(type)];
  }
  return StrFormat("t%d", type);
}

std::string RenderPattern(const Pattern& p,
                          const std::vector<std::string>& vocab) {
  const Graph& g = p.graph();
  std::string out = "{nodes: ";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v > 0) out += " ";
    out += StrFormat("%d:%s", v, TypeName(vocab, g.node_type(v)).c_str());
  }
  out += "; edges:";
  for (const Edge& e : g.edges()) {
    out += StrFormat(" %d-%d", e.u, e.v);
  }
  out += "}";
  return out;
}

}  // namespace gvex
