// Candidate-filtered subgraph matching — the fast replacement for blind
// backtracking on the serving fallback path.
//
// FindMatches/ContainsPattern (isomorphism.h) start backtracking with every
// target node a candidate for every pattern node; type and degree are only
// checked when a node is tried. The filtered matcher instead computes an
// Ullmann-style per-node CANDIDATE SET first — target nodes matching the
// pattern node's type, degree lower bound, and neighborhood signature
// (per (neighbor type, edge type) counts; directed graphs use the
// symmetric closure and neighbor types only, because the blind matcher
// accepts either orientation for a directed edge) — and refines the sets
// to a
// fixpoint: a candidate survives only if every pattern neighbor still has a
// candidate among its target neighbors. Most non-matching queries die right
// there (some pattern node ends up with no candidates) without a single
// backtracking step; matching queries backtrack over the surviving
// candidates only, in a most-constrained-first order. Candidate sets are
// bitsets over target nodes, so refinement and membership run on the
// word-level kernels of util/bitops.h.
//
// The filters are SOUND overapproximations for both induced and
// non-induced semantics: any target node that appears in some match always
// survives filtering, so the match set is exactly FindMatches' match set
// (pinned by the randomized parity suite in tests/pattern/matcher_test.cpp;
// enumeration ORDER may differ). ContainsPattern-compatible entry points
// mirror the legacy budget behavior (exhausting MatchOptions::max_steps
// returns "no match"); the *Budgeted entry point reports budget exhaustion
// as an explicit kUnknown instead — a sound "don't know", never a wrong
// yes or no.
//
// MaxCommonSubgraph is a McSplit-style branch-and-bound search for the
// maximum common node-induced subgraph of two graphs (label classes +
// soft bound, min_max branching), with a step budget that turns it into an
// anytime/approximate search: when the budget runs out the best mapping
// found so far is returned with exact = false. It backs the `mcs` serve
// verb (approximate pattern queries over the view store).
//
// Thread-safety: all functions are pure (no shared state); safe to call
// concurrently.

#ifndef GVEX_PATTERN_MATCHER_H_
#define GVEX_PATTERN_MATCHER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "pattern/isomorphism.h"

namespace gvex {

/// Tri-state answer for budgeted containment.
enum class MatchVerdict {
  kNoMatch,  ///< the full space was searched; no match exists
  kMatch,    ///< a match was found
  kUnknown,  ///< budget exhausted before either could be proven
};

/// Observability counters for one matcher run.
struct MatcherStats {
  /// True when filtering alone refuted the query (no backtracking ran).
  bool filtered_out = false;
  /// Total surviving candidates across pattern nodes (after refinement).
  uint64_t candidates = 0;
  /// Backtracking steps spent.
  uint64_t steps = 0;
};

/// Computes refined per-node candidate sets: (*candidates)[pv] lists the
/// target nodes that survive the label + degree + neighborhood-signature
/// filter and Ullmann refinement, ascending. Returns false when some
/// pattern node has NO candidates — no match can exist (the sets are still
/// written). Every node of every match survives, for both semantics.
bool BuildCandidateSets(const Graph& pattern, const Graph& target,
                        std::vector<std::vector<NodeId>>* candidates);

/// Drop-in replacement for FindMatches: same match SET (order may differ,
/// and unlike FindMatches — which can emit a mapping twice on directed
/// graphs when a pair is connected in both orientations — each match is
/// returned exactly once).
std::vector<Match> FilteredFindMatches(const Graph& pattern,
                                       const Graph& target,
                                       const MatchOptions& options = {},
                                       MatcherStats* stats = nullptr);

/// Drop-in replacement for ContainsPattern (early-exit, budget exhaustion
/// answers false exactly like the legacy matcher).
bool FilteredContainsPattern(const Graph& target, const Graph& pattern,
                             const MatchOptions& options = {},
                             MatcherStats* stats = nullptr);

/// Budget-honest containment: kUnknown when MatchOptions::max_steps ran
/// out before a match was found or the space was exhausted.
MatchVerdict FilteredContainsPatternBudgeted(const Graph& target,
                                             const Graph& pattern,
                                             const MatchOptions& options = {},
                                             MatcherStats* stats = nullptr);

/// Budget for MaxCommonSubgraph.
struct McsOptions {
  /// Branch-and-bound nodes explored before giving up (0 = unlimited).
  /// An exhausted budget downgrades the result to exact = false.
  int64_t max_steps = 2'000'000;
  /// Stop early once a common subgraph of this size is found (0 = run to
  /// the optimum / budget). Lets callers ask "do these share >= k nodes?".
  int target_size = 0;
};

/// A (possibly budget-truncated) maximum common subgraph.
struct McsResult {
  /// Nodes in the best common induced subgraph found.
  int size = 0;
  /// True when the search proved optimality (budget did not bind and no
  /// target_size early-exit fired); false = `size` is a lower bound.
  bool exact = true;
  /// The witness mapping, (node in a, node in b) pairs, a-side ascending.
  std::vector<std::pair<NodeId, NodeId>> mapping;
  /// Branch-and-bound nodes explored.
  int64_t steps = 0;
};

/// McSplit-style maximum common node-induced subgraph of `a` and `b`:
/// node types must agree pairwise and mapped edges must agree in presence
/// AND edge type (non-edges map to non-edges — induced).
McsResult MaxCommonSubgraph(const Graph& a, const Graph& b,
                            const McsOptions& options = {});

}  // namespace gvex

#endif  // GVEX_PATTERN_MATCHER_H_
