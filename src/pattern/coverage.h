// Node/edge coverage of graphs by pattern sets — the bookkeeping behind
// constraint C1/C3 verification, Psum's weighted set cover, and the
// Compression / Edge-loss metrics of §6.

#ifndef GVEX_PATTERN_COVERAGE_H_
#define GVEX_PATTERN_COVERAGE_H_

#include <vector>

#include "graph/graph.h"
#include "pattern/isomorphism.h"
#include "pattern/pattern.h"

namespace gvex {

/// Which nodes/edges of one graph a pattern (set) covers. Edge flags align
/// with graph.edges() order.
struct CoverageMask {
  std::vector<bool> nodes;
  std::vector<bool> edges;

  int CountNodes() const;
  int CountEdges() const;
  bool AllNodes() const;
};

/// Coverage of `g` by one pattern (union over all matches).
CoverageMask ComputeCoverage(const Pattern& pattern, const Graph& g,
                             const MatchOptions& options = {});

/// Coverage of `g` by a set of patterns (union).
CoverageMask ComputeCoverage(const std::vector<Pattern>& patterns,
                             const Graph& g,
                             const MatchOptions& options = {});

/// Merges `other` into `base` (logical or); shapes must agree.
void MergeCoverage(const CoverageMask& other, CoverageMask* base);

/// True iff `patterns` cover every node of every graph — the graph-view
/// invariant ("P covers all the nodes in G_s", §2.1).
bool PatternsCoverAllNodes(const std::vector<Pattern>& patterns,
                           const std::vector<const Graph*>& graphs,
                           const MatchOptions& options = {});

}  // namespace gvex

#endif  // GVEX_PATTERN_COVERAGE_H_
