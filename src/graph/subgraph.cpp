#include "graph/subgraph.h"

#include <queue>
#include <unordered_set>

#include "util/string_util.h"

namespace gvex {

Result<InducedSubgraph> ExtractInducedSubgraph(
    const Graph& g, const std::vector<NodeId>& nodes) {
  InducedSubgraph out;
  out.graph = Graph(g.directed());
  std::vector<int> to_sub(static_cast<size_t>(g.num_nodes()), -1);
  for (NodeId v : nodes) {
    if (v < 0 || v >= g.num_nodes()) {
      return Status::InvalidArgument(
          StrFormat("node %d out of bounds (graph has %d nodes)", v,
                    g.num_nodes()));
    }
    if (to_sub[static_cast<size_t>(v)] != -1) continue;  // dedup
    to_sub[static_cast<size_t>(v)] =
        out.graph.AddNode(g.node_type(v));
    out.original_nodes.push_back(v);
  }
  // Induced edges: iterate parent edges once.
  for (const Edge& e : g.edges()) {
    int su = to_sub[static_cast<size_t>(e.u)];
    int sv = to_sub[static_cast<size_t>(e.v)];
    if (su >= 0 && sv >= 0) {
      Status st = out.graph.AddEdge(su, sv, e.edge_type);
      if (!st.ok()) return st;
    }
  }
  if (g.has_features()) {
    Matrix x(out.graph.num_nodes(), g.feature_dim());
    for (int i = 0; i < out.graph.num_nodes(); ++i) {
      x.SetRow(i, g.features().RowVec(out.original_nodes[static_cast<size_t>(i)]));
    }
    GVEX_RETURN_NOT_OK(out.graph.SetFeatures(std::move(x)));
  }
  return out;
}

Result<InducedSubgraph> RemoveNodes(const Graph& g,
                                    const std::vector<NodeId>& nodes) {
  std::unordered_set<NodeId> removed(nodes.begin(), nodes.end());
  for (NodeId v : removed) {
    if (v < 0 || v >= g.num_nodes()) {
      return Status::InvalidArgument(
          StrFormat("node %d out of bounds (graph has %d nodes)", v,
                    g.num_nodes()));
    }
  }
  std::vector<NodeId> keep;
  keep.reserve(static_cast<size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!removed.count(v)) keep.push_back(v);
  }
  return ExtractInducedSubgraph(g, keep);
}

InducedSubgraph ExtractNeighborhood(const Graph& g, NodeId center, int hops) {
  std::vector<int> dist(static_cast<size_t>(g.num_nodes()), -1);
  std::queue<NodeId> q;
  dist[static_cast<size_t>(center)] = 0;
  q.push(center);
  std::vector<NodeId> nodes{center};
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    if (dist[static_cast<size_t>(u)] >= hops) continue;
    for (const Neighbor& nb : g.neighbors(u)) {
      if (dist[static_cast<size_t>(nb.node)] == -1) {
        dist[static_cast<size_t>(nb.node)] = dist[static_cast<size_t>(u)] + 1;
        nodes.push_back(nb.node);
        q.push(nb.node);
      }
    }
  }
  auto result = ExtractInducedSubgraph(g, nodes);
  // Cannot fail: nodes are valid by construction.
  return std::move(result).value();
}

}  // namespace gvex
