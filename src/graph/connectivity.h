// Connectivity queries over attributed graphs: connected components, BFS
// distances, and connectivity checks used by pattern mining (patterns must be
// connected per §2.1) and by the explanation-subgraph bookkeeping.

#ifndef GVEX_GRAPH_CONNECTIVITY_H_
#define GVEX_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "graph/graph.h"

namespace gvex {

/// Connected components (edges treated as undirected). Each inner vector
/// lists node ids of one component, in ascending order; components are
/// ordered by their smallest node.
std::vector<std::vector<NodeId>> ConnectedComponents(const Graph& g);

/// True iff the graph is connected (the empty graph counts as connected).
bool IsConnected(const Graph& g);

/// BFS hop distances from `src` (-1 where unreachable), undirected traversal.
std::vector<int> BfsDistances(const Graph& g, NodeId src);

/// True iff the subgraph induced by `nodes` is connected in g.
bool InducedSubsetConnected(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace gvex

#endif  // GVEX_GRAPH_CONNECTIVITY_H_
