// Attributed graph per §2.1: G = (V, E, T, L). Nodes carry an integer type
// L(v) (real-world entity type, e.g. atom symbol) and a feature vector T(v);
// edges carry an integer type L(e) (e.g. bond type). Undirected by default
// (both directions stored); directed graphs store one direction.

#ifndef GVEX_GRAPH_GRAPH_H_
#define GVEX_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "la/sparse.h"
#include "util/status.h"

namespace gvex {

using NodeId = int32_t;

/// One endpoint record in an adjacency list.
struct Neighbor {
  NodeId node;
  int edge_type;
};

/// One stored edge (u <= v for undirected graphs after normalization).
struct Edge {
  NodeId u;
  NodeId v;
  int edge_type;
};

/// Attributed graph with typed nodes/edges and per-node feature vectors.
/// Node ids are dense [0, num_nodes).
class Graph {
 public:
  /// Creates an empty graph. `directed` controls edge semantics.
  explicit Graph(bool directed = false) : directed_(directed) {}

  /// Adds a node with the given type; returns its id. Features default to a
  /// zero vector whose width is fixed by the first SetFeatures call.
  NodeId AddNode(int node_type);

  /// Adds an edge u—v (or u→v when directed) with a type. Self loops and
  /// duplicate edges are rejected.
  Status AddEdge(NodeId u, NodeId v, int edge_type = 0);

  /// True if the edge u—v (u→v when directed) exists.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Type of the edge u—v; -1 when absent.
  int EdgeType(NodeId u, NodeId v) const;

  int num_nodes() const { return static_cast<int>(node_types_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  bool directed() const { return directed_; }

  int node_type(NodeId v) const { return node_types_[static_cast<size_t>(v)]; }
  const std::vector<int>& node_types() const { return node_types_; }

  /// Out-neighbors (all neighbors for undirected graphs).
  const std::vector<Neighbor>& neighbors(NodeId v) const {
    return adj_[static_cast<size_t>(v)];
  }

  int degree(NodeId v) const {
    return static_cast<int>(adj_[static_cast<size_t>(v)].size());
  }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Node feature matrix X (num_nodes x feature_dim). Empty until set.
  const Matrix& features() const { return features_; }
  bool has_features() const { return !features_.empty(); }
  int feature_dim() const { return features_.cols(); }

  /// Installs a feature matrix; must have num_nodes rows.
  Status SetFeatures(Matrix x);

  /// Sets node features to one-hot encodings of node types with the given
  /// vocabulary size (types must lie in [0, num_types)).
  Status SetOneHotFeaturesFromTypes(int num_types);

  /// Symmetric-normalized propagation operator of Eq. (1):
  /// S = D^-1/2 (A + I) D^-1/2 over the *undirectedized* adjacency (GCN
  /// convention: directed graphs are symmetrized for message passing).
  SparseMatrix NormalizedAdjacency() const;

  /// Summary like "Graph(n=30, m=31, directed=false)".
  std::string ToString() const;

 private:
  bool directed_;
  std::vector<int> node_types_;
  std::vector<std::vector<Neighbor>> adj_;  // out-adjacency
  std::vector<Edge> edges_;
  Matrix features_;
};

}  // namespace gvex

#endif  // GVEX_GRAPH_GRAPH_H_
