// Plain-text serialization of attributed graphs and graph databases.
//
// Format (line-oriented, '#' comments allowed):
//   graph <num_nodes> <directed:0|1> [label]
//   n <id> <type> [f0 f1 ...]
//   e <u> <v> <edge_type>
//   end
//
// A file may contain many graphs; `label` is the class label used by the
// classification task (-1 when absent).

#ifndef GVEX_GRAPH_GRAPH_IO_H_
#define GVEX_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gvex {

/// One serialized record: a graph plus its (optional) class label.
struct LabeledGraph {
  Graph graph;
  int label = -1;
};

/// Serializes one labeled graph in the text format above.
std::string SerializeGraph(const Graph& g, int label = -1);

/// Parses all graphs from text.
Result<std::vector<LabeledGraph>> ParseGraphs(const std::string& text);

/// Writes a set of labeled graphs to `path`.
Status SaveGraphs(const std::string& path,
                  const std::vector<LabeledGraph>& graphs);

/// Loads all graphs from `path`.
Result<std::vector<LabeledGraph>> LoadGraphs(const std::string& path);

}  // namespace gvex

#endif  // GVEX_GRAPH_GRAPH_IO_H_
