// Node-induced subgraph extraction and complement (G \ Gs) — the two graph
// surgeries the explanation-subgraph definition of §2.2 relies on.

#ifndef GVEX_GRAPH_SUBGRAPH_H_
#define GVEX_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace gvex {

/// A node-induced subgraph together with the mapping back to the parent.
struct InducedSubgraph {
  Graph graph;
  /// original_nodes[i] is the parent-graph id of subgraph node i.
  std::vector<NodeId> original_nodes;
};

/// Extracts the subgraph induced by `nodes` (order preserved after dedup).
/// Copies node types, induced edges, and feature rows. Out-of-range ids are
/// rejected.
Result<InducedSubgraph> ExtractInducedSubgraph(const Graph& g,
                                               const std::vector<NodeId>& nodes);

/// The complement surgery G \ Gs of the counterfactual check: the subgraph
/// induced by V \ nodes.
Result<InducedSubgraph> RemoveNodes(const Graph& g,
                                    const std::vector<NodeId>& nodes);

/// Extracts the subgraph induced by the r-hop neighborhood of `center`
/// (inclusive). Used by IncPGen in the streaming algorithm.
InducedSubgraph ExtractNeighborhood(const Graph& g, NodeId center, int hops);

}  // namespace gvex

#endif  // GVEX_GRAPH_SUBGRAPH_H_
