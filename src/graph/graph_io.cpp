#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace gvex {

std::string SerializeGraph(const Graph& g, int label) {
  std::string out = StrFormat("graph %d %d %d\n", g.num_nodes(),
                              g.directed() ? 1 : 0, label);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out += StrFormat("n %d %d", v, g.node_type(v));
    if (g.has_features()) {
      for (int j = 0; j < g.feature_dim(); ++j) {
        out += StrFormat(" %.6g", g.features().at(v, j));
      }
    }
    out += "\n";
  }
  for (const Edge& e : g.edges()) {
    out += StrFormat("e %d %d %d\n", e.u, e.v, e.edge_type);
  }
  out += "end\n";
  return out;
}

Result<std::vector<LabeledGraph>> ParseGraphs(const std::string& text) {
  std::vector<LabeledGraph> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  LabeledGraph cur;
  bool in_graph = false;
  int expected_nodes = 0;
  std::vector<std::vector<float>> feats;

  auto finish_graph = [&]() -> Status {
    if (cur.graph.num_nodes() != expected_nodes) {
      return Status::InvalidArgument(
          StrFormat("graph declared %d nodes but %d given", expected_nodes,
                    cur.graph.num_nodes()));
    }
    bool any_feats = false;
    for (const auto& f : feats) {
      if (!f.empty()) any_feats = true;
    }
    if (any_feats) {
      size_t dim = 0;
      for (const auto& f : feats) dim = std::max(dim, f.size());
      Matrix x(cur.graph.num_nodes(), static_cast<int>(dim));
      for (int v = 0; v < cur.graph.num_nodes(); ++v) {
        const auto& f = feats[static_cast<size_t>(v)];
        for (size_t j = 0; j < f.size(); ++j) {
          x.at(v, static_cast<int>(j)) = f[j];
        }
      }
      GVEX_RETURN_NOT_OK(cur.graph.SetFeatures(std::move(x)));
    }
    out.push_back(std::move(cur));
    return Status::OK();
  };

  while (std::getline(in, line)) {
    ++lineno;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    auto tok = SplitWhitespace(line);
    if (tok[0] == "graph") {
      if (in_graph) {
        return Status::InvalidArgument(
            StrFormat("line %d: nested 'graph'", lineno));
      }
      int directed_flag = 0;
      if (tok.size() < 3 || !ParseInt(tok[1], &expected_nodes) ||
          expected_nodes < 0 || !ParseInt(tok[2], &directed_flag)) {
        return Status::InvalidArgument(
            StrFormat("line %d: malformed graph header", lineno));
      }
      cur = LabeledGraph{Graph(directed_flag != 0), -1};
      if (tok.size() >= 4 && !ParseInt(tok[3], &cur.label)) {
        return Status::InvalidArgument(
            StrFormat("line %d: malformed graph label", lineno));
      }
      feats.assign(static_cast<size_t>(expected_nodes), {});
      in_graph = true;
    } else if (tok[0] == "n") {
      int id = 0;
      int type = 0;
      if (!in_graph || tok.size() < 3 || !ParseInt(tok[1], &id) ||
          !ParseInt(tok[2], &type)) {
        return Status::InvalidArgument(
            StrFormat("line %d: malformed node line", lineno));
      }
      NodeId got = cur.graph.AddNode(type);
      if (got != id) {
        return Status::InvalidArgument(
            StrFormat("line %d: node ids must be dense in order (got %d, "
                      "expected %d)",
                      lineno, id, got));
      }
      for (size_t j = 3; j < tok.size(); ++j) {
        float feat = 0.0f;
        if (!ParseFloat(tok[j], &feat)) {
          return Status::InvalidArgument(
              StrFormat("line %d: malformed feature '%s'", lineno,
                        tok[j].c_str()));
        }
        feats[static_cast<size_t>(id)].push_back(feat);
      }
    } else if (tok[0] == "e") {
      int u = 0;
      int v = 0;
      int et = 0;
      if (!in_graph || tok.size() < 3 || !ParseInt(tok[1], &u) ||
          !ParseInt(tok[2], &v) ||
          (tok.size() >= 4 && !ParseInt(tok[3], &et))) {
        return Status::InvalidArgument(
            StrFormat("line %d: malformed edge line", lineno));
      }
      Status st = cur.graph.AddEdge(u, v, et);
      if (!st.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %d: %s", lineno, st.ToString().c_str()));
      }
    } else if (tok[0] == "end") {
      if (!in_graph) {
        return Status::InvalidArgument(
            StrFormat("line %d: 'end' outside graph", lineno));
      }
      GVEX_RETURN_NOT_OK(finish_graph());
      in_graph = false;
    } else {
      return Status::InvalidArgument(
          StrFormat("line %d: unknown directive '%s'", lineno,
                    tok[0].c_str()));
    }
  }
  if (in_graph) {
    return Status::InvalidArgument("unterminated graph (missing 'end')");
  }
  return out;
}

Status SaveGraphs(const std::string& path,
                  const std::vector<LabeledGraph>& graphs) {
  std::ofstream f(path);
  if (!f.good()) return Status::IOError("cannot open " + path);
  for (const auto& lg : graphs) f << SerializeGraph(lg.graph, lg.label);
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<LabeledGraph>> LoadGraphs(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) return Status::IOError("cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ParseGraphs(ss.str());
}

}  // namespace gvex
