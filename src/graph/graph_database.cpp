#include "graph/graph_database.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace gvex {

int GraphDatabase::Add(Graph g, int true_label) {
  graphs_.push_back(std::move(g));
  true_labels_.push_back(true_label);
  return static_cast<int>(graphs_.size()) - 1;
}

Status GraphDatabase::SetPredictedLabels(std::vector<int> labels) {
  if (labels.size() != graphs_.size()) {
    return Status::InvalidArgument(
        StrFormat("got %zu predictions for %zu graphs", labels.size(),
                  graphs_.size()));
  }
  predicted_labels_ = std::move(labels);
  return Status::OK();
}

std::vector<int> GraphDatabase::LabelGroup(int label) const {
  const std::vector<int>& labels =
      has_predictions() ? predicted_labels_ : true_labels_;
  std::vector<int> out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == label) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> GraphDatabase::DistinctLabels() const {
  const std::vector<int>& labels =
      has_predictions() ? predicted_labels_ : true_labels_;
  std::set<int> s(labels.begin(), labels.end());
  return std::vector<int>(s.begin(), s.end());
}

int GraphDatabase::TotalNodes(const std::vector<int>& indices) const {
  int total = 0;
  for (int i : indices) total += graph(i).num_nodes();
  return total;
}

GraphDatabase::Stats GraphDatabase::ComputeStats() const {
  Stats s;
  s.num_graphs = size();
  if (empty()) return s;
  double nodes = 0.0;
  double edges = 0.0;
  for (const auto& g : graphs_) {
    nodes += g.num_nodes();
    edges += g.num_edges();
    s.feature_dim = std::max(s.feature_dim, g.feature_dim());
  }
  s.avg_nodes = nodes / size();
  s.avg_edges = edges / size();
  std::set<int> classes(true_labels_.begin(), true_labels_.end());
  s.num_classes = static_cast<int>(classes.size());
  return s;
}

}  // namespace gvex
