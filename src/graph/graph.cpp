#include "graph/graph.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace gvex {

NodeId Graph::AddNode(int node_type) {
  node_types_.push_back(node_type);
  adj_.emplace_back();
  // Grow the feature matrix lazily: if features were installed already, the
  // caller must re-install them after adding nodes; enforced in SetFeatures.
  return static_cast<NodeId>(node_types_.size() - 1);
}

Status Graph::AddEdge(NodeId u, NodeId v, int edge_type) {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("edge (%d,%d) out of bounds for %d nodes", u, v,
                  num_nodes()));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self loop at node %d", u));
  }
  if (HasEdge(u, v)) {
    return Status::InvalidArgument(StrFormat("duplicate edge (%d,%d)", u, v));
  }
  adj_[static_cast<size_t>(u)].push_back({v, edge_type});
  if (!directed_) adj_[static_cast<size_t>(v)].push_back({u, edge_type});
  Edge e{u, v, edge_type};
  if (!directed_ && e.u > e.v) std::swap(e.u, e.v);
  edges_.push_back(e);
  return Status::OK();
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) return false;
  const auto& nb = adj_[static_cast<size_t>(u)];
  for (const auto& n : nb) {
    if (n.node == v) return true;
  }
  return false;
}

int Graph::EdgeType(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) return -1;
  for (const auto& n : adj_[static_cast<size_t>(u)]) {
    if (n.node == v) return n.edge_type;
  }
  return -1;
}

Status Graph::SetFeatures(Matrix x) {
  if (x.rows() != num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("feature matrix has %d rows, graph has %d nodes", x.rows(),
                  num_nodes()));
  }
  features_ = std::move(x);
  return Status::OK();
}

Status Graph::SetOneHotFeaturesFromTypes(int num_types) {
  Matrix x(num_nodes(), num_types);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    int t = node_type(v);
    if (t < 0 || t >= num_types) {
      return Status::InvalidArgument(
          StrFormat("node %d type %d outside [0,%d)", v, t, num_types));
    }
    x.at(v, t) = 1.0f;
  }
  features_ = std::move(x);
  return Status::OK();
}

SparseMatrix Graph::NormalizedAdjacency() const {
  const int n = num_nodes();
  // Degree of Â = A_sym + I.
  std::vector<float> deg(static_cast<size_t>(n), 1.0f);  // self loop
  std::vector<SparseMatrix::Triplet> trips;
  trips.reserve(static_cast<size_t>(edges_.size()) * 2 +
                static_cast<size_t>(n));
  for (const Edge& e : edges_) {
    deg[static_cast<size_t>(e.u)] += 1.0f;
    deg[static_cast<size_t>(e.v)] += 1.0f;
  }
  std::vector<float> inv_sqrt(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    inv_sqrt[static_cast<size_t>(v)] =
        1.0f / std::sqrt(deg[static_cast<size_t>(v)]);
  }
  for (int v = 0; v < n; ++v) {
    float w = inv_sqrt[static_cast<size_t>(v)] * inv_sqrt[static_cast<size_t>(v)];
    trips.push_back({v, v, w});
  }
  for (const Edge& e : edges_) {
    float w = inv_sqrt[static_cast<size_t>(e.u)] * inv_sqrt[static_cast<size_t>(e.v)];
    trips.push_back({e.u, e.v, w});
    trips.push_back({e.v, e.u, w});
  }
  return SparseMatrix(n, n, std::move(trips));
}

std::string Graph::ToString() const {
  return StrFormat("Graph(n=%d, m=%d, directed=%s)", num_nodes(), num_edges(),
                   directed_ ? "true" : "false");
}

}  // namespace gvex
