#include "graph/connectivity.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace gvex {

namespace {
// Undirected adjacency view: for directed graphs we traverse both directions.
std::vector<std::vector<NodeId>> UndirectedAdj(const Graph& g) {
  std::vector<std::vector<NodeId>> adj(static_cast<size_t>(g.num_nodes()));
  for (const Edge& e : g.edges()) {
    adj[static_cast<size_t>(e.u)].push_back(e.v);
    adj[static_cast<size_t>(e.v)].push_back(e.u);
  }
  return adj;
}
}  // namespace

std::vector<std::vector<NodeId>> ConnectedComponents(const Graph& g) {
  auto adj = UndirectedAdj(g);
  std::vector<bool> seen(static_cast<size_t>(g.num_nodes()), false);
  std::vector<std::vector<NodeId>> comps;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (seen[static_cast<size_t>(s)]) continue;
    std::vector<NodeId> comp;
    std::queue<NodeId> q;
    q.push(s);
    seen[static_cast<size_t>(s)] = true;
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      comp.push_back(u);
      for (NodeId v : adj[static_cast<size_t>(u)]) {
        if (!seen[static_cast<size_t>(v)]) {
          seen[static_cast<size_t>(v)] = true;
          q.push(v);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

bool IsConnected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return ConnectedComponents(g).size() == 1;
}

std::vector<int> BfsDistances(const Graph& g, NodeId src) {
  auto adj = UndirectedAdj(g);
  std::vector<int> dist(static_cast<size_t>(g.num_nodes()), -1);
  std::queue<NodeId> q;
  dist[static_cast<size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (NodeId v : adj[static_cast<size_t>(u)]) {
      if (dist[static_cast<size_t>(v)] == -1) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

bool InducedSubsetConnected(const Graph& g, const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return true;
  std::unordered_set<NodeId> in_set(nodes.begin(), nodes.end());
  std::unordered_set<NodeId> seen;
  std::queue<NodeId> q;
  q.push(nodes[0]);
  seen.insert(nodes[0]);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (const Neighbor& nb : g.neighbors(u)) {
      if (in_set.count(nb.node) && !seen.count(nb.node)) {
        seen.insert(nb.node);
        q.push(nb.node);
      }
    }
    if (g.directed()) {
      // Also traverse reverse edges for connectivity purposes.
      for (NodeId w : in_set) {
        if (!seen.count(w) && g.HasEdge(w, u)) {
          seen.insert(w);
          q.push(w);
        }
      }
    }
  }
  return seen.size() == in_set.size();
}

}  // namespace gvex
