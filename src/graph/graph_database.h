// Graph database G = {G_1, ..., G_m} with per-graph class labels — the input
// object of the EVG problem (§3.2). Stores ground-truth labels (from the
// generator) and, once a classifier has run, the model-assigned labels used
// to form label groups G^l.

#ifndef GVEX_GRAPH_GRAPH_DATABASE_H_
#define GVEX_GRAPH_GRAPH_DATABASE_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gvex {

/// A set of attributed graphs with labels.
class GraphDatabase {
 public:
  GraphDatabase() = default;

  /// Appends a graph with its ground-truth label; returns its index.
  int Add(Graph g, int true_label);

  int size() const { return static_cast<int>(graphs_.size()); }
  bool empty() const { return graphs_.empty(); }

  const Graph& graph(int i) const { return graphs_[static_cast<size_t>(i)]; }
  Graph* mutable_graph(int i) { return &graphs_[static_cast<size_t>(i)]; }

  int true_label(int i) const { return true_labels_[static_cast<size_t>(i)]; }
  const std::vector<int>& true_labels() const { return true_labels_; }

  /// Model-assigned labels (empty until SetPredictedLabels).
  bool has_predictions() const { return !predicted_labels_.empty(); }
  int predicted_label(int i) const {
    return predicted_labels_[static_cast<size_t>(i)];
  }
  Status SetPredictedLabels(std::vector<int> labels);

  /// Label group G^l: indices of graphs whose *predicted* label is l
  /// (falls back to ground truth if no predictions are installed).
  std::vector<int> LabelGroup(int label) const;

  /// Distinct labels present (predicted if available, else ground truth),
  /// ascending.
  std::vector<int> DistinctLabels() const;

  /// Total node count across a set of graph indices (|V^l| of §3.1).
  int TotalNodes(const std::vector<int>& indices) const;

  /// Aggregate statistics for reporting (Table 3 reproduction).
  struct Stats {
    int num_graphs = 0;
    double avg_nodes = 0.0;
    double avg_edges = 0.0;
    int feature_dim = 0;
    int num_classes = 0;
  };
  Stats ComputeStats() const;

 private:
  std::vector<Graph> graphs_;
  std::vector<int> true_labels_;
  std::vector<int> predicted_labels_;
};

}  // namespace gvex

#endif  // GVEX_GRAPH_GRAPH_DATABASE_H_
