// Inverted pattern index over a set of explanation views — the read path of
// the serving subsystem. The legacy ViewStore answered every pattern query
// with a linear scan running one subgraph-isomorphism check per
// (pattern, graph) pair; the index pays that cross-product ONCE at build
// time and turns the queries themselves into hash lookups + bitset walks:
//
//   * postings keyed by Pattern::canonical_code(): which labels carry the
//     code in their view tier (and at which tier position), and which
//     database graphs contain the pattern;
//   * per-(code, label) coverage bitsets over the label's explanation
//     subgraphs, so GraphsWithPattern and DiscriminativePatterns reduce to
//     bitset iteration / emptiness checks. All bitset walks run on the
//     word-level kernels of util/bitops.h (ctz iteration, wide AND/ANDNOT/
//     emptiness), and GraphsWithAllPatterns batches a multi-pattern
//     conjunction into ONE accumulator pass over the postings instead of
//     one walk per pattern.
//
// Matching is kept only as a fallback for query patterns whose canonical
// code is not in the index (non-exact containment queries) — those still
// scan, but through the candidate-filtered matcher
// (pattern/matcher.h) rather than blind backtracking; the filtered
// matcher's answers are bit-identical to the legacy ContainsPattern scan
// (pinned by the oracle parity suites). Fallback scans and inconsistent
// postings (a known code missing its per-label bitset — possible only with
// a logically corrupt snapshot) are counted in stats() and the latter is
// logged loudly; both still return the correct answer via the scan.
//
// Complexity: Build is O(codes x (total subgraphs + database size)) pattern
// matches, shardable across a thread pool (deterministic result for every
// worker count). Indexed queries are O(1) lookups plus output size;
// DiscriminativePatterns is O(|tier| x labels) bitset-emptiness checks.
//
// Thread-safety: immutable after Build; all const methods are safe to call
// concurrently. Treat instances as snapshots — never mutated in place.

#ifndef GVEX_SERVE_PATTERN_INDEX_H_
#define GVEX_SERVE_PATTERN_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "explain/explanation.h"
#include "graph/graph_database.h"
#include "pattern/isomorphism.h"
#include "pattern/pattern.h"
#include "store/snapshot.h"

namespace gvex {

/// Postings for one canonical pattern code.
struct PatternPostings {
  /// Labels whose view tier contains this code, ascending.
  std::vector<int> labels;
  /// label -> position of the code in that view's pattern tier.
  std::map<int, int> tier_position;
  /// label -> bitset (64-bit words) over the label view's subgraph list;
  /// bit i is set iff subgraphs[i].subgraph contains the pattern. Computed
  /// for EVERY indexed label, not just the ones carrying the code, so
  /// discriminative queries never fall back to isomorphism. Shared with
  /// snapshot export/import (StoredPostings carries the same pointer), so
  /// Save() copies pointers, not bitset words.
  CoverageBitsPtr subgraph_bits;
  /// Database graph indices containing the pattern, ascending (empty when
  /// database indexing is disabled or no database was supplied).
  std::vector<int> db_graphs;
};

/// Observability counters for one index instance. Queries mutate them
/// through an atomic so the index itself stays logically immutable (and
/// every const method stays safe to call concurrently).
struct IndexStats {
  /// Queries whose code was not indexed — answered by a filtered
  /// containment scan (the expected slow path for non-exact patterns).
  std::atomic<uint64_t> fallback_scans{0};
  /// Known code but no bitset for the queried label. This is an
  /// inconsistent snapshot state (build computes bits for every label); it
  /// is logged loudly, counted here, and answered by a scan.
  std::atomic<uint64_t> inconsistent_postings{0};
  /// Fallback containment checks refuted by candidate filtering alone
  /// (zero backtracking steps) — the matcher's fast-reject rate.
  std::atomic<uint64_t> filtered_rejects{0};
};

/// Immutable inverted index over the pattern tiers of a view set.
class PatternIndex {
 public:
  struct BuildOptions {
    /// Match semantics for containment checks; must equal the legacy
    /// store's options for bit-identical answers (induced by default).
    MatchOptions match;
    /// Precompute db_graphs postings (full-database pattern queries become
    /// lookups at the cost of |codes| x |db| matches at build time).
    bool index_database = true;
    /// Workers for the build; the result is identical for every count.
    int num_threads = 1;
    BuildOptions() { match.semantics = MatchSemantics::kInduced; }
  };

  /// An empty index (no views, no database).
  PatternIndex() = default;

  /// Builds the index over `views` (keyed by label). `db` may be null and
  /// must outlive the index when given; views are shared via the pointer.
  static PatternIndex Build(
      std::shared_ptr<const std::map<int, ExplanationView>> views,
      const GraphDatabase* db, const BuildOptions& options = {});

  /// Convenience overload copying the map.
  static PatternIndex Build(const std::map<int, ExplanationView>& views,
                            const GraphDatabase* db,
                            const BuildOptions& options = {});

  // --- Snapshot persistence (store/snapshot.h) ---

  /// Exports every posting in ascending code order (deterministic snapshot
  /// bytes for identical state).
  std::vector<StoredPostings> ExportPostings() const;

  /// Reassembles an index from exported postings WITHOUT any isomorphism
  /// work — the warm-start path of ViewService::Open. The caller must
  /// supply the views/database the postings were computed over; `match`
  /// and `database_indexed` come from the snapshot so fallback queries
  /// behave exactly like the index that was saved. Answers are
  /// bit-identical to the original (pinned by the snapshot parity test).
  static PatternIndex FromStored(
      std::shared_ptr<const std::map<int, ExplanationView>> views,
      const GraphDatabase* db, const MatchOptions& match,
      bool database_indexed, const std::vector<StoredPostings>& postings);

  // --- Queries. Each is bit-identical to the legacy ViewStore scan (see
  // serve/view_store.h and the oracle parity test). ---

  /// Labels that have a registered view, ascending.
  std::vector<int> Labels() const;

  /// The pattern tier of `label`'s view (empty when absent).
  const std::vector<Pattern>& PatternsForLabel(int label) const;

  /// Graphs of label group `label` whose explanation subgraph contains `p`.
  /// Indexed when p's code is known; filtered-matcher scan fallback
  /// otherwise.
  std::vector<int> GraphsWithPattern(int label, const Pattern& p) const;

  /// Graphs of label group `label` whose explanation subgraph contains ALL
  /// of `patterns` — equal to intersecting GraphsWithPattern answers, but
  /// computed as ONE bitset-AND accumulator pass across the postings
  /// (indexed codes narrow the accumulator word-wise first; any
  /// fallback-scan patterns only check subgraphs still in the
  /// accumulator). Empty `patterns` returns every graph of the label.
  std::vector<int> GraphsWithAllPatterns(
      int label, const std::vector<Pattern>& patterns) const;

  /// Labels whose pattern tier contains a pattern isomorphic to `p`.
  /// Always a pure hash lookup (tier membership is exact code equality).
  std::vector<int> LabelsOfPattern(const Pattern& p) const;

  /// Database graphs containing `p`, restricted to `label` (-1 = all).
  /// Indexed when p's code is known and the database was indexed.
  std::vector<int> DatabaseGraphsWithPattern(const Pattern& p,
                                             int label = -1) const;

  /// Patterns of `label`'s tier matching no explanation subgraph of any
  /// other label — pure bitset-emptiness checks, no isomorphism.
  std::vector<Pattern> DiscriminativePatterns(int label) const;

  /// Postings lookup by canonical code (null when unknown).
  const PatternPostings* Find(const std::string& code) const;

  int num_codes() const { return static_cast<int>(postings_.size()); }
  bool empty() const { return views_ == nullptr || views_->empty(); }
  const std::map<int, ExplanationView>& views() const;
  const MatchOptions& match_options() const { return match_; }
  bool database_indexed() const { return database_indexed_; }
  /// Query-path counters (shared across copies of this snapshot's index).
  const IndexStats& stats() const { return *stats_; }

 private:
  bool SubgraphContains(const Graph& subgraph, const Pattern& p) const;

  std::shared_ptr<const std::map<int, ExplanationView>> views_;
  const GraphDatabase* db_ = nullptr;
  MatchOptions match_;
  bool database_indexed_ = false;
  std::unordered_map<std::string, PatternPostings> postings_;
  // Behind a pointer so the index stays cheaply movable/copyable and const
  // query methods can count.
  std::shared_ptr<IndexStats> stats_ = std::make_shared<IndexStats>();
};

}  // namespace gvex

#endif  // GVEX_SERVE_PATTERN_INDEX_H_
