#include "serve/view_service.h"

#include <atomic>
#include <functional>
#include <utility>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gvex {

namespace {

// The initial (epoch-0) views map, shared by every service instance.
std::shared_ptr<const std::map<int, ExplanationView>> EmptyViews() {
  static const auto empty =
      std::make_shared<const std::map<int, ExplanationView>>();
  return empty;
}

// True for kinds whose answers are worth caching: the ones that historically
// cost an isomorphism scan. kLabels / kPatternsForLabel are O(1) reads of
// the snapshot — a cache would only add lock traffic.
bool Cacheable(QueryKind kind) {
  switch (kind) {
    case QueryKind::kGraphsWithPattern:
    case QueryKind::kLabelsOfPattern:
    case QueryKind::kDatabaseGraphsWithPattern:
    case QueryKind::kDiscriminativePatterns:
      return true;
    case QueryKind::kLabels:
    case QueryKind::kPatternsForLabel:
      return false;
  }
  return false;
}

std::string CacheKey(uint64_t epoch, const ViewQuery& q) {
  std::string key = StrFormat("%llu|%d|%d|",
                              static_cast<unsigned long long>(epoch),
                              static_cast<int>(q.kind), q.label);
  key += q.pattern.canonical_code();
  return key;
}

}  // namespace

ViewService::ViewService(const GraphDatabase* db, ViewServiceOptions options)
    : db_(db), options_(options) {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = 0;
  snap->views = EmptyViews();
  snap->index = PatternIndex::Build(snap->views, db_, options_.index);
  snapshot_ = std::shared_ptr<const Snapshot>(std::move(snap));
  const int shards = std::max(1, options_.cache_shards);
  cache_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    cache_.push_back(std::make_unique<CacheShard>());
  }
  if (options_.batch_workers > 0) {
    batch_pool_ = std::make_unique<ThreadPool>(options_.batch_workers);
  }
}

std::shared_ptr<const ViewService::Snapshot> ViewService::Load() const {
  return std::atomic_load(&snapshot_);
}

void ViewService::Publish(std::shared_ptr<const Snapshot> snap) {
  std::atomic_store(&snapshot_, std::move(snap));
}

Result<uint64_t> ViewService::AdmitView(ExplanationView view) {
  std::vector<ExplanationView> one;
  one.push_back(std::move(view));
  return AdmitViews(std::move(one));
}

Result<uint64_t> ViewService::AdmitViews(std::vector<ExplanationView> views) {
  if (views.empty()) {
    return Status::InvalidArgument("no views to admit");
  }
  for (const ExplanationView& v : views) {
    if (v.label < 0) {
      return Status::InvalidArgument("cannot admit a view without a label");
    }
  }
  // Writers serialize here; readers are untouched. Everything below — the
  // views-map copy and the index rebuild — happens on the NEXT snapshot,
  // off to the side of the published one.
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const Snapshot> cur = Load();
  auto next_views =
      std::make_shared<std::map<int, ExplanationView>>(*cur->views);
  for (ExplanationView& v : views) {
    (*next_views)[v.label] = std::move(v);
  }
  auto next = std::make_shared<Snapshot>();
  const uint64_t published = cur->epoch + 1;
  next->epoch = published;
  next->views = std::move(next_views);
  next->index = PatternIndex::Build(next->views, db_, options_.index);
  Publish(std::move(next));
  return published;
}

uint64_t ViewService::epoch() const { return Load()->epoch; }

ViewQueryResult ViewService::Execute(const Snapshot& snap,
                                     const ViewQuery& q) const {
  ViewQueryResult out;
  out.epoch = snap.epoch;
  switch (q.kind) {
    case QueryKind::kLabels:
      out.ids = snap.index.Labels();
      break;
    case QueryKind::kPatternsForLabel:
      out.patterns = snap.index.PatternsForLabel(q.label);
      break;
    case QueryKind::kGraphsWithPattern:
      out.ids = snap.index.GraphsWithPattern(q.label, q.pattern);
      break;
    case QueryKind::kLabelsOfPattern:
      out.ids = snap.index.LabelsOfPattern(q.pattern);
      break;
    case QueryKind::kDatabaseGraphsWithPattern:
      out.ids = snap.index.DatabaseGraphsWithPattern(q.pattern, q.label);
      break;
    case QueryKind::kDiscriminativePatterns:
      out.patterns = snap.index.DiscriminativePatterns(q.label);
      break;
  }
  return out;
}

ViewQueryResult ViewService::ExecuteCached(const Snapshot& snap,
                                           const ViewQuery& q) const {
  if (options_.cache_capacity == 0 || !Cacheable(q.kind)) {
    return Execute(snap, q);
  }
  const std::string key = CacheKey(snap.epoch, q);
  CacheShard& shard =
      *cache_[std::hash<std::string>()(key) % cache_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      // Refresh LRU position.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->result;
    }
    ++shard.misses;
  }
  // Compute outside the lock — a slow query must not serialize the shard.
  ViewQueryResult result = Execute(snap, q);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      shard.lru.push_front(CacheShard::Entry{key, result});
      shard.map[key] = shard.lru.begin();
      while (shard.map.size() > options_.cache_capacity) {
        shard.map.erase(shard.lru.back().key);
        shard.lru.pop_back();
      }
    }
  }
  return result;
}

std::vector<int> ViewService::Labels() const {
  return Load()->index.Labels();
}

std::vector<Pattern> ViewService::PatternsForLabel(int label) const {
  return Load()->index.PatternsForLabel(label);
}

std::vector<int> ViewService::GraphsWithPattern(int label,
                                                const Pattern& p) const {
  ViewQuery q;
  q.kind = QueryKind::kGraphsWithPattern;
  q.label = label;
  q.pattern = p;
  return ExecuteCached(*Load(), q).ids;
}

std::vector<int> ViewService::LabelsOfPattern(const Pattern& p) const {
  ViewQuery q;
  q.kind = QueryKind::kLabelsOfPattern;
  q.pattern = p;
  return ExecuteCached(*Load(), q).ids;
}

std::vector<int> ViewService::DatabaseGraphsWithPattern(const Pattern& p,
                                                        int label) const {
  ViewQuery q;
  q.kind = QueryKind::kDatabaseGraphsWithPattern;
  q.label = label;
  q.pattern = p;
  return ExecuteCached(*Load(), q).ids;
}

std::vector<Pattern> ViewService::DiscriminativePatterns(int label) const {
  ViewQuery q;
  q.kind = QueryKind::kDiscriminativePatterns;
  q.label = label;
  return ExecuteCached(*Load(), q).patterns;
}

std::vector<ViewQueryResult> ViewService::ExecuteBatch(
    const std::vector<ViewQuery>& queries, int num_threads) const {
  // One snapshot for the whole batch: every answer shares an epoch, and the
  // batch is immune to concurrent admissions.
  std::shared_ptr<const Snapshot> snap = Load();
  std::vector<ViewQueryResult> results(queries.size());
  const int n = static_cast<int>(queries.size());
  const auto run_shard = [&](const Shard& shard) {
    for (int i = shard.begin; i < shard.end; ++i) {
      results[static_cast<size_t>(i)] =
          ExecuteCached(*snap, queries[static_cast<size_t>(i)]);
    }
  };
  // Results are slot-indexed, so the output is identical whichever pool
  // (persistent or transient) runs the shards, and for any worker count.
  if (batch_pool_ != nullptr) {
    batch_pool_->RunSharded(batch_pool_->num_threads() * 4, n, run_shard);
  } else {
    const int threads = std::max(1, num_threads);
    ThreadPool::ParallelForShards(threads, threads * 4, n, run_shard);
  }
  return results;
}

ViewServiceStats ViewService::stats() const {
  ViewServiceStats out;
  std::shared_ptr<const Snapshot> snap = Load();
  out.epoch = snap->epoch;
  out.num_labels = static_cast<int>(snap->views->size());
  out.num_codes = snap->index.num_codes();
  for (const auto& shard : cache_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.cache_hits += shard->hits;
    out.cache_misses += shard->misses;
  }
  return out;
}

}  // namespace gvex
