#include "serve/view_service.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <utility>

#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/rate_limiter.h"
#include "store/recovery.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gvex {

namespace {

// The initial (epoch-0) views map, shared by every service instance.
std::shared_ptr<const std::map<int, ExplanationView>> EmptyViews() {
  static const auto empty =
      std::make_shared<const std::map<int, ExplanationView>>();
  return empty;
}

// True for kinds whose answers are worth caching: the ones that historically
// cost an isomorphism scan. kLabels / kPatternsForLabel are O(1) reads of
// the snapshot — a cache would only add lock traffic.
bool Cacheable(QueryKind kind) {
  switch (kind) {
    case QueryKind::kGraphsWithPattern:
    case QueryKind::kLabelsOfPattern:
    case QueryKind::kDatabaseGraphsWithPattern:
    case QueryKind::kDiscriminativePatterns:
      return true;
    case QueryKind::kLabels:
    case QueryKind::kPatternsForLabel:
      return false;
  }
  return false;
}

std::string CacheKey(uint64_t epoch, const ViewQuery& q) {
  std::string key = StrFormat("%llu|%d|%d|",
                              static_cast<unsigned long long>(epoch),
                              static_cast<int>(q.kind), q.label);
  key += q.pattern.canonical_code();
  return key;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int64_t SteadyNowMs() {
  return obs::RateLimiter::MonotonicNowNs() / 1000000;
}

// Store-layer instruments, registered once; hot paths then cost only
// relaxed atomic adds (never the registry lock).
struct StoreInstruments {
  obs::Histogram* batch_callers;
  obs::Histogram* batch_views;
  obs::Histogram* leader_tenure;
  obs::Histogram* index_rebuild;
  obs::Histogram* save_seconds_full;
  obs::Histogram* save_seconds_delta;
  obs::Counter* saves_full;
  obs::Counter* saves_delta;
  obs::Counter* save_failures_full;
  obs::Counter* save_failures_delta;
  obs::Histogram* compaction_seconds;
};

const StoreInstruments& StoreObs() {
  static const StoreInstruments* instruments = [] {
    auto* si = new StoreInstruments();
    obs::Registry& m = obs::Metrics();
    si->batch_callers = m.GetHistogram(
        "gvex_admit_batch_callers",
        "AdmitViews callers combined into one published batch",
        obs::Unit::kNone);
    si->batch_views = m.GetHistogram(
        "gvex_admit_batch_views", "Views folded into one published batch",
        obs::Unit::kNone);
    si->leader_tenure = m.GetHistogram(
        "gvex_admit_leader_tenure_seconds",
        "Time one caller spent leading the combining queue",
        obs::Unit::kNanoseconds);
    si->index_rebuild = m.GetHistogram(
        "gvex_index_rebuild_seconds",
        "PatternIndex build time per published admission batch",
        obs::Unit::kNanoseconds);
    si->save_seconds_full = m.GetHistogram(
        "gvex_snapshot_save_seconds", "Snapshot write duration, per kind",
        obs::Unit::kNanoseconds, "kind", "full");
    si->save_seconds_delta = m.GetHistogram(
        "gvex_snapshot_save_seconds", "Snapshot write duration, per kind",
        obs::Unit::kNanoseconds, "kind", "delta");
    si->saves_full =
        m.GetCounter("gvex_snapshot_saves_total",
                     "Snapshot writes that succeeded, per kind", "kind",
                     "full");
    si->saves_delta =
        m.GetCounter("gvex_snapshot_saves_total",
                     "Snapshot writes that succeeded, per kind", "kind",
                     "delta");
    si->save_failures_full =
        m.GetCounter("gvex_snapshot_save_failures_total",
                     "Snapshot writes that failed, per kind", "kind", "full");
    si->save_failures_delta =
        m.GetCounter("gvex_snapshot_save_failures_total",
                     "Snapshot writes that failed, per kind", "kind",
                     "delta");
    si->compaction_seconds = m.GetHistogram(
        "gvex_compaction_seconds", "Compact() duration, failures included",
        obs::Unit::kNanoseconds);
    return si;
  }();
  return *instruments;
}

}  // namespace

ViewService::~ViewService() {
  // First: the health checks capture `this` and the store. Unregister
  // returning guarantees none is mid-run, so everything they read may now
  // be torn down.
  health_handles_.clear();
  if (store_ != nullptr) {
    std::lock_guard<std::mutex> lock(store_->compact_mu);
    if (store_->compactor.joinable()) store_->compactor.join();
  }
}

ViewService::ViewService(const GraphDatabase* db, ViewServiceOptions options)
    : db_(db), options_(options) {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = 0;
  snap->views = EmptyViews();
  snap->index = PatternIndex::Build(snap->views, db_, options_.index);
  snapshot_ = std::shared_ptr<const Snapshot>(std::move(snap));
  const int shards = std::max(1, options_.cache_shards);
  cache_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    cache_.push_back(std::make_unique<CacheShard>());
  }
  if (options_.batch_workers > 0) {
    batch_pool_ = std::make_unique<ThreadPool>(options_.batch_workers);
  }
  RegisterHealthChecks();
}

void ViewService::RegisterHealthChecks() {
  health_handles_.push_back(obs::RegisterHealthCheck(
      "admit_queue", [this]() -> obs::HealthCheckResult {
        const int64_t since =
            admit_leader_since_ms_.load(std::memory_order_relaxed);
        if (since == 0) return {obs::HealthStatus::kOk, "idle"};
        const double held_sec =
            static_cast<double>(SteadyNowMs() - since) / 1000.0;
        if (held_sec > options_.admit_wedge_warn_sec) {
          return {obs::HealthStatus::kFail,
                  StrFormat("combining-queue leader wedged for %.1f s",
                            held_sec)};
        }
        return {obs::HealthStatus::kOk, "leader active"};
      }));
}

void ViewService::RegisterDurableHealthChecks() {
  DurableStore* store = store_.get();
  health_handles_.push_back(obs::RegisterHealthCheck(
      "store_lock", [store]() -> obs::HealthCheckResult {
        if (store->lock_fd < 0) {
          return {obs::HealthStatus::kFail, "store LOCK not held"};
        }
        struct stat st;
        if (::fstat(store->lock_fd, &st) != 0) {
          return {obs::HealthStatus::kFail, "store LOCK fd unusable"};
        }
        return {obs::HealthStatus::kOk, "flock held on " + store->dir + "/LOCK"};
      }));
  health_handles_.push_back(obs::RegisterHealthCheck(
      "wal", [this, store]() -> obs::HealthCheckResult {
        // try-lock only: health evaluation must never stall behind a save
        // or compaction holding the writer lock.
        std::unique_lock<std::mutex> lock(writer_mu_, std::try_to_lock);
        if (!lock.owns_lock()) {
          return {obs::HealthStatus::kOk,
                  "writer busy (admission/save/compaction in flight)"};
        }
        if (!store->wal.is_open()) {
          return {obs::HealthStatus::kFail,
                  "WAL writer not open (latched append/reset failure)"};
        }
        const obs::HealthCheckResult dir_check =
            obs::CheckDirectoryWritable(store->dir);
        if (dir_check.status != obs::HealthStatus::kOk) return dir_check;
        return {obs::HealthStatus::kOk,
                StrFormat("appendable (%llu bytes)",
                          static_cast<unsigned long long>(
                              store->wal.file_bytes()))};
      }));
  health_handles_.push_back(obs::RegisterHealthCheck(
      "compaction", [this, store]() -> obs::HealthCheckResult {
        {
          std::lock_guard<std::mutex> status_lock(store->status_mu);
          if (!store->last_compact_error.empty()) {
            return {obs::HealthStatus::kDegraded,
                    "last compaction failed: " + store->last_compact_error};
          }
        }
        const uint64_t threshold = options_.store.compact_wal_bytes;
        if (threshold > 0) {
          std::unique_lock<std::mutex> lock(writer_mu_, std::try_to_lock);
          if (lock.owns_lock() && store->wal.is_open()) {
            const uint64_t bytes = store->wal.file_bytes();
            if (bytes > 4 * threshold) {
              return {obs::HealthStatus::kDegraded,
                      StrFormat("WAL backlog %llu bytes exceeds 4x the "
                                "compact threshold",
                                static_cast<unsigned long long>(bytes))};
            }
          }
        }
        return {obs::HealthStatus::kOk, "backlog bounded"};
      }));
}

std::shared_ptr<const ViewService::Snapshot> ViewService::Load() const {
  return std::atomic_load(&snapshot_);
}

void ViewService::Publish(std::shared_ptr<const Snapshot> snap) {
  std::atomic_store(&snapshot_, std::move(snap));
}

Result<uint64_t> ViewService::AdmitView(ExplanationView view) {
  std::vector<ExplanationView> one;
  one.push_back(std::move(view));
  return AdmitViews(std::move(one));
}

Result<uint64_t> ViewService::AdmitViews(std::vector<ExplanationView> views) {
  if (views.empty()) {
    return Status::InvalidArgument("no views to admit");
  }
  for (const ExplanationView& v : views) {
    if (v.label < 0) {
      return Status::InvalidArgument("cannot admit a view without a label");
    }
  }
  if (read_only()) {
    return Status::FailedPrecondition(
        "read-only replica refuses admissions (Promote() first)");
  }
  // Single-writer combining queue: every caller enqueues; the first one to
  // find no active leader becomes the leader and publishes every queued
  // admission as one epoch (one WAL append + fsync, one index rebuild —
  // the expensive parts amortize over the whole batch). Later arrivals
  // just sleep until a leader marks their waiter done, so admission
  // throughput under load is bounded by batches, not callers. Leadership
  // is TENURE-BOUNDED: once the leader's own admission is published it
  // serves at most a couple more rounds and then hands the role to a
  // queued waiter — a sustained stream of admitters can therefore never
  // hold one caller's AdmitViews hostage indefinitely.
  AdmitWaiter me;
  me.views = std::move(views);
  std::unique_lock<std::mutex> lock(admit_mu_);
  admit_queue_.push_back(&me);
  // Returns immediately when there is no active leader (or a leader
  // already served us); otherwise sleeps until one of those holds.
  admit_cv_.wait(lock, [&] { return me.done || !admit_leader_active_; });
  if (!me.done) {
    // No active leader and our admission is still queued: lead.
    admit_leader_active_ = true;
    admit_leader_since_ms_.store(SteadyNowMs(), std::memory_order_relaxed);
    const auto tenure_start = std::chrono::steady_clock::now();
    constexpr int kLeaderExtraRounds = 2;
    int extra_rounds = 0;
    while (!admit_queue_.empty()) {
      if (me.done && ++extra_rounds > kLeaderExtraRounds) break;
      std::vector<AdmitWaiter*> batch;
      batch.swap(admit_queue_);
      lock.unlock();
      uint64_t published = 0;
      uint64_t wal_bytes = 0;
      const Status status = AdmitCombined(batch, &published, &wal_bytes);
      // Outside both locks: compaction takes the writer lock itself.
      MaybeScheduleCompact(wal_bytes);
      lock.lock();
      for (AdmitWaiter* waiter : batch) {
        waiter->status = status;
        waiter->epoch = published;
        waiter->done = true;
      }
      admit_cv_.notify_all();
    }
    admit_leader_active_ = false;
    admit_leader_since_ms_.store(0, std::memory_order_relaxed);
    StoreObs().leader_tenure->ObserveSeconds(SecondsSince(tenure_start));
    if (!admit_queue_.empty()) {
      // Tenure expired with work still queued: wake the waiters so one
      // of them takes over as leader.
      admit_cv_.notify_all();
    }
  }
  lock.unlock();
  GVEX_RETURN_NOT_OK(me.status);
  return me.epoch;
}

Status ViewService::AdmitCombined(const std::vector<AdmitWaiter*>& batch,
                                  uint64_t* published, uint64_t* wal_bytes) {
  // Writers serialize here; readers are untouched. Everything below — the
  // WAL append, the views-map copy, and the index rebuild — happens on the
  // NEXT snapshot, off to the side of the published one.
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (options_.admit_test_hook) options_.admit_test_hook();
  std::shared_ptr<const Snapshot> cur = Load();
  *published = cur->epoch + 1;
  *wal_bytes = 0;
  // One WAL record for the whole combined batch (the record's epoch still
  // bumps by exactly one, so recovery's contiguity invariant holds); views
  // are applied in queue order, so a caller's own ordering is preserved
  // and the last admission of a label wins.
  WalRecord record;
  record.epoch = *published;
  size_t total = 0;
  for (const AdmitWaiter* waiter : batch) total += waiter->views.size();
  StoreObs().batch_callers->Observe(batch.size());
  StoreObs().batch_views->Observe(total);
  record.views.reserve(total);
  for (AdmitWaiter* waiter : batch) {
    for (ExplanationView& v : waiter->views) {
      record.views.push_back(std::move(v));
    }
  }
  if (store_ != nullptr) {
    if (store_->wal_needs_reset.load()) {
      // A previous Compact saved its snapshot but could not reset the
      // WAL; the snapshot covers every logged record, so retrying here
      // is safe — and un-wedges a writer the failure left closed. The
      // admission must NOT proceed while the reset is still pending: an
      // appended-then-reset record would be an acknowledged admission
      // destroyed by the next successful reset.
      GVEX_RETURN_NOT_OK(store_->wal.Reset());
      store_->wal_needs_reset.store(false);
    }
    // Log-before-publish: if the append fails, nothing was admitted — the
    // whole batch sees the error and the published state is unchanged.
    GVEX_RETURN_NOT_OK(store_->wal.Append(record));
    for (const ExplanationView& v : record.views) {
      store_->dirty_labels.insert(v.label);
    }
  }
  auto next_views =
      std::make_shared<std::map<int, ExplanationView>>(*cur->views);
  for (ExplanationView& v : record.views) {
    (*next_views)[v.label] = std::move(v);
  }
  auto next = std::make_shared<Snapshot>();
  next->epoch = *published;
  next->views = std::move(next_views);
  const auto build_start = std::chrono::steady_clock::now();
  next->index = PatternIndex::Build(next->views, db_, options_.index);
  StoreObs().index_rebuild->ObserveSeconds(SecondsSince(build_start));
  next->admitted_views = cur->admitted_views + total;
  next->admitted_batches = cur->admitted_batches + batch.size();
  Publish(std::move(next));
  obs::RecordFlight(obs::FlightKind::kEpoch,
                    "epoch %llu published (%zu views, %zu callers)",
                    static_cast<unsigned long long>(*published), total,
                    batch.size());
  if (store_ != nullptr) *wal_bytes = store_->wal.file_bytes();
  return Status::OK();
}

uint64_t ViewService::epoch() const { return Load()->epoch; }

ViewQueryResult ViewService::Execute(const Snapshot& snap,
                                     const ViewQuery& q) const {
  ViewQueryResult out;
  out.epoch = snap.epoch;
  switch (q.kind) {
    case QueryKind::kLabels:
      out.ids = snap.index.Labels();
      break;
    case QueryKind::kPatternsForLabel:
      out.patterns = snap.index.PatternsForLabel(q.label);
      break;
    case QueryKind::kGraphsWithPattern:
      out.ids = snap.index.GraphsWithPattern(q.label, q.pattern);
      break;
    case QueryKind::kLabelsOfPattern:
      out.ids = snap.index.LabelsOfPattern(q.pattern);
      break;
    case QueryKind::kDatabaseGraphsWithPattern:
      out.ids = snap.index.DatabaseGraphsWithPattern(q.pattern, q.label);
      break;
    case QueryKind::kDiscriminativePatterns:
      out.patterns = snap.index.DiscriminativePatterns(q.label);
      break;
  }
  return out;
}

ViewQueryResult ViewService::ExecuteCached(const Snapshot& snap,
                                           const ViewQuery& q) const {
  if (options_.cache_capacity == 0 || !Cacheable(q.kind)) {
    return Execute(snap, q);
  }
  const std::string key = CacheKey(snap.epoch, q);
  CacheShard& shard =
      *cache_[std::hash<std::string>()(key) % cache_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      // Refresh LRU position.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->result;
    }
    ++shard.misses;
  }
  // Compute outside the lock — a slow query must not serialize the shard.
  ViewQueryResult result = Execute(snap, q);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      shard.lru.push_front(CacheShard::Entry{key, result});
      shard.map[key] = shard.lru.begin();
      while (shard.map.size() > options_.cache_capacity) {
        shard.map.erase(shard.lru.back().key);
        shard.lru.pop_back();
      }
    }
  }
  return result;
}

std::vector<int> ViewService::Labels() const {
  return Load()->index.Labels();
}

std::vector<Pattern> ViewService::PatternsForLabel(int label) const {
  return Load()->index.PatternsForLabel(label);
}

std::vector<int> ViewService::GraphsWithPattern(int label,
                                                const Pattern& p) const {
  ViewQuery q;
  q.kind = QueryKind::kGraphsWithPattern;
  q.label = label;
  q.pattern = p;
  return ExecuteCached(*Load(), q).ids;
}

std::vector<int> ViewService::GraphsWithAllPatterns(
    int label, const std::vector<Pattern>& patterns) const {
  return Load()->index.GraphsWithAllPatterns(label, patterns);
}

McsAnswer ViewService::MaxCommonSubgraph(int label, const Graph& query,
                                         const McsOptions& options) const {
  std::shared_ptr<const Snapshot> snap = Load();
  McsAnswer out;
  out.epoch = snap->epoch;
  auto it = snap->views->find(label);
  if (it == snap->views->end()) return out;
  for (const ExplanationSubgraph& s : it->second.subgraphs) {
    const McsResult r = gvex::MaxCommonSubgraph(query, s.subgraph, options);
    if (!r.exact) out.exact = false;  // some search stopped early
    if (r.size > out.size) {
      out.size = r.size;
      out.graph_index = s.graph_index;
    }
  }
  return out;
}

std::vector<int> ViewService::LabelsOfPattern(const Pattern& p) const {
  ViewQuery q;
  q.kind = QueryKind::kLabelsOfPattern;
  q.pattern = p;
  return ExecuteCached(*Load(), q).ids;
}

std::vector<int> ViewService::DatabaseGraphsWithPattern(const Pattern& p,
                                                        int label) const {
  ViewQuery q;
  q.kind = QueryKind::kDatabaseGraphsWithPattern;
  q.label = label;
  q.pattern = p;
  return ExecuteCached(*Load(), q).ids;
}

std::vector<Pattern> ViewService::DiscriminativePatterns(int label) const {
  ViewQuery q;
  q.kind = QueryKind::kDiscriminativePatterns;
  q.label = label;
  return ExecuteCached(*Load(), q).patterns;
}

std::vector<ViewQueryResult> ViewService::ExecuteBatch(
    const std::vector<ViewQuery>& queries, int num_threads) const {
  // One snapshot for the whole batch: every answer shares an epoch, and the
  // batch is immune to concurrent admissions.
  std::shared_ptr<const Snapshot> snap = Load();
  std::vector<ViewQueryResult> results(queries.size());
  const int n = static_cast<int>(queries.size());
  const auto run_shard = [&](const Shard& shard) {
    for (int i = shard.begin; i < shard.end; ++i) {
      results[static_cast<size_t>(i)] =
          ExecuteCached(*snap, queries[static_cast<size_t>(i)]);
    }
  };
  // Results are slot-indexed, so the output is identical whichever pool
  // (persistent or transient) runs the shards, and for any worker count.
  if (batch_pool_ != nullptr) {
    batch_pool_->RunSharded(batch_pool_->num_threads() * 4, n, run_shard);
  } else {
    const int threads = std::max(1, num_threads);
    ThreadPool::ParallelForShards(threads, threads * 4, n, run_shard);
  }
  return results;
}

// --- Durable storage -----------------------------------------------------

const std::string& ViewService::store_dir() const {
  static const std::string empty;
  const DurableStore* store = store_ptr_.load(std::memory_order_acquire);
  return store != nullptr ? store->dir : empty;
}

Result<std::unique_ptr<ViewService>> ViewService::Open(
    const std::string& dir, const GraphDatabase* db,
    ViewServiceOptions options) {
  GVEX_RETURN_NOT_OK(EnsureDir(dir));

  // One writer per store: a second Open (e.g. an "offline" gvex_store
  // compact racing a live server) would truncate the WAL under the first
  // writer's feet and strand its acknowledged appends behind torn bytes.
  // flock is advisory but every store entry point goes through Open.
  auto store = std::make_unique<DurableStore>();
  store->dir = dir;
  const std::string lock_path = dir + "/LOCK";
  store->lock_fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                          0644);
  if (store->lock_fd < 0) {
    return Status::IOError(StrFormat("cannot open %s: %s", lock_path.c_str(),
                                     std::strerror(errno)));
  }
  if (::flock(store->lock_fd, LOCK_EX | LOCK_NB) != 0) {
    return Status::FailedPrecondition(StrFormat(
        "store %s is locked by another process (close it, or wait for it "
        "to exit)", dir.c_str()));
  }

  // The shared fail-stop verdict (src/store/recovery.h): newest valid
  // snapshot, WAL contiguity, acknowledged-epoch reachability.
  GVEX_ASSIGN_OR_RETURN(RecoveryPlan plan, PlanRecovery(dir));
  if (plan.have_snapshot) {
    // The snapshot records the semantics its postings were computed with;
    // recovery must answer with those regardless of the caller's defaults
    // — on BOTH paths below (posting decode and WAL-replay rebuild), and
    // for every index rebuild a later admission triggers. Otherwise the
    // same store would answer differently depending on whether a WAL
    // record happened to exist at reopen.
    options.index.match = plan.snapshot.match;
    options.index.index_database = plan.snapshot.database_indexed;
  }

  auto service =
      std::unique_ptr<ViewService>(new ViewService(db, options));

  // Chain bookkeeping: the tip is what the resolved chain persists; WAL
  // records beyond it are the dirty set the next delta save must carry.
  store->persisted_epoch = plan.snapshot.epoch;
  store->base_epoch = plan.base_epoch;
  store->have_base = plan.have_snapshot;
  store->chain_length = static_cast<int>(plan.chain.size());
  const uint64_t wal_valid_bytes = plan.replay.valid_bytes;

  std::set<int> dirty;
  auto next = BuildRecoveredSnapshot(std::move(plan), db, options, &dirty);
  if (next != nullptr) service->Publish(std::move(next));
  store->dirty_labels = std::move(dirty);

  store->wal.set_sync_every(options.store.wal_sync_every);
  // Dropping a torn tail here is safe: those bytes never published (the
  // WAL is written before the snapshot swap, so at worst the tail is an
  // admission whose caller never saw success).
  GVEX_RETURN_NOT_OK(store->wal.Open(dir + "/" + WalFileName(),
                                     wal_valid_bytes));
  service->store_ = std::move(store);
  service->store_ptr_.store(service->store_.get(), std::memory_order_release);
  service->RegisterDurableHealthChecks();
  return service;
}

std::shared_ptr<const ViewService::Snapshot>
ViewService::BuildRecoveredSnapshot(RecoveryPlan plan, const GraphDatabase* db,
                                    const ViewServiceOptions& options,
                                    std::set<int>* dirty) {
  auto views = std::make_shared<std::map<int, ExplanationView>>(
      std::move(plan.snapshot.views));
  bool replayed_any = false;
  for (WalRecord& record : plan.replay.records) {
    // Records at or below the chain tip were folded into the base or a
    // delta already (Save never resets the WAL, so the log overlaps the
    // chain); applying them again would be a no-op anyway — skip.
    if (record.epoch <= plan.snapshot.epoch) continue;
    for (ExplanationView& v : record.views) {
      if (dirty != nullptr) dirty->insert(v.label);
      (*views)[v.label] = std::move(v);
    }
    replayed_any = true;
  }
  if (plan.final_epoch == 0) return nullptr;
  auto next = std::make_shared<Snapshot>();
  next->epoch = plan.final_epoch;
  next->views = std::move(views);
  if (replayed_any || !plan.postings_valid) {
    // WAL admissions or folded deltas changed the view set — one scratch
    // index build over the recovered state.
    next->index = PatternIndex::Build(next->views, db, options.index);
  } else {
    // Pure-base warm start: decode the postings, skip the isomorphism
    // cross-product entirely.
    next->index =
        PatternIndex::FromStored(next->views, db, plan.snapshot.match,
                                 plan.snapshot.database_indexed,
                                 plan.snapshot.postings);
  }
  return next;
}

Result<std::unique_ptr<ViewService>> ViewService::OpenReplica(
    const std::string& dir, const GraphDatabase* db,
    ViewServiceOptions options) {
  GVEX_RETURN_NOT_OK(EnsureDir(dir));
  // No LOCK, no WAL writer: the replica applier owns the directory (and
  // holds its LOCK); this service only publishes validated state from it.
  GVEX_ASSIGN_OR_RETURN(RecoveryPlan plan, PlanRecovery(dir));
  if (plan.have_snapshot) {
    options.index.match = plan.snapshot.match;
    options.index.index_database = plan.snapshot.database_indexed;
  }
  auto service =
      std::unique_ptr<ViewService>(new ViewService(db, options));
  service->read_only_.store(true, std::memory_order_release);
  service->replica_dir_ = dir;
  auto next = BuildRecoveredSnapshot(std::move(plan), db, options, nullptr);
  if (next != nullptr) service->Publish(std::move(next));
  return service;
}

const std::string& ViewService::replication_dir() const {
  const DurableStore* store = store_ptr_.load(std::memory_order_acquire);
  return store != nullptr ? store->dir : replica_dir_;
}

Status ViewService::ReplicaPublishPlan(RecoveryPlan plan) {
  if (!read_only()) {
    return Status::FailedPrecondition(
        "ReplicaPublishPlan requires an unpromoted replica (OpenReplica)");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const Snapshot> cur = Load();
  if (plan.final_epoch < cur->epoch) {
    return Status::IOError(StrFormat(
        "replica is at epoch %llu but the primary's recovery plan reaches "
        "only %llu — refusing to regress acknowledged state",
        static_cast<unsigned long long>(cur->epoch),
        static_cast<unsigned long long>(plan.final_epoch)));
  }
  if (plan.have_snapshot) {
    // Adopt the primary's index semantics, exactly like Open would.
    options_.index.match = plan.snapshot.match;
    options_.index.index_database = plan.snapshot.database_indexed;
  }
  const uint64_t final_epoch = plan.final_epoch;
  auto next = BuildRecoveredSnapshot(std::move(plan), db_, options_, nullptr);
  if (next == nullptr) return Status::OK();  // empty plan, still epoch 0
  Publish(std::move(next));
  obs::RecordFlight(obs::FlightKind::kEpoch,
                    "replica refreshed to epoch %llu",
                    static_cast<unsigned long long>(final_epoch));
  return Status::OK();
}

Status ViewService::ReplicaApplyWalRecords(
    const std::vector<WalRecord>& records) {
  if (!read_only()) {
    return Status::FailedPrecondition(
        "ReplicaApplyWalRecords requires an unpromoted replica");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const Snapshot> cur = Load();
  uint64_t epoch = cur->epoch;
  std::shared_ptr<std::map<int, ExplanationView>> next_views;
  for (const WalRecord& record : records) {
    if (record.epoch <= epoch) continue;  // already published
    if (record.epoch != epoch + 1) {
      // The caller escalates to the full PlanRecovery verdict, which either
      // resolves the gap through the chain or fail-stops on lost state.
      return Status::FailedPrecondition(StrFormat(
          "WAL record epoch %llu does not attach to replica epoch %llu",
          static_cast<unsigned long long>(record.epoch),
          static_cast<unsigned long long>(epoch)));
    }
    if (next_views == nullptr) {
      next_views =
          std::make_shared<std::map<int, ExplanationView>>(*cur->views);
    }
    for (const ExplanationView& v : record.views) (*next_views)[v.label] = v;
    epoch = record.epoch;
  }
  if (next_views == nullptr) return Status::OK();  // nothing new
  auto next = std::make_shared<Snapshot>();
  next->epoch = epoch;
  next->views = std::move(next_views);
  next->index = PatternIndex::Build(next->views, db_, options_.index);
  next->admitted_views = cur->admitted_views;
  next->admitted_batches = cur->admitted_batches;
  Publish(std::move(next));
  obs::RecordFlight(obs::FlightKind::kEpoch,
                    "replica applied WAL to epoch %llu",
                    static_cast<unsigned long long>(epoch));
  return Status::OK();
}

Status ViewService::Promote() {
  if (!read_only()) {
    return Status::FailedPrecondition(
        "Promote() requires an unpromoted replica (OpenReplica)");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  const std::string dir = replica_dir_;

  // The authoritative recovery verdict over the mirrored directory — a
  // replica must only go writable on a state a restarted primary would
  // also recover to.
  GVEX_ASSIGN_OR_RETURN(RecoveryPlan plan, PlanRecovery(dir));
  std::shared_ptr<const Snapshot> cur = Load();
  if (plan.final_epoch < cur->epoch) {
    return Status::IOError(StrFormat(
        "promotion would regress the replica from epoch %llu to %llu — "
        "the mirrored directory is behind acknowledged state",
        static_cast<unsigned long long>(cur->epoch),
        static_cast<unsigned long long>(plan.final_epoch)));
  }

  // Become the directory's one writer. The applier must have released its
  // LOCK before calling (ReplicaApplier::Promote orders this).
  auto store = std::make_unique<DurableStore>();
  store->dir = dir;
  const std::string lock_path = dir + "/LOCK";
  store->lock_fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                          0644);
  if (store->lock_fd < 0) {
    return Status::IOError(StrFormat("cannot open %s: %s", lock_path.c_str(),
                                     std::strerror(errno)));
  }
  if (::flock(store->lock_fd, LOCK_EX | LOCK_NB) != 0) {
    return Status::FailedPrecondition(StrFormat(
        "store %s is still locked (the replication applier must release it "
        "before promotion)", dir.c_str()));
  }

  if (plan.have_snapshot) {
    options_.index.match = plan.snapshot.match;
    options_.index.index_database = plan.snapshot.database_indexed;
  }
  store->persisted_epoch = plan.snapshot.epoch;
  store->base_epoch = plan.base_epoch;
  store->have_base = plan.have_snapshot;
  store->chain_length = static_cast<int>(plan.chain.size());
  const uint64_t wal_valid_bytes = plan.replay.valid_bytes;
  const uint64_t final_epoch = plan.final_epoch;

  std::set<int> dirty;
  auto next = BuildRecoveredSnapshot(std::move(plan), db_, options_, &dirty);
  store->dirty_labels = std::move(dirty);
  store->wal.set_sync_every(options_.store.wal_sync_every);
  GVEX_RETURN_NOT_OK(store->wal.Open(dir + "/" + WalFileName(),
                                     wal_valid_bytes));

  // Republish exactly the recovered state (the verdict may see WAL bytes
  // the incremental apply path had not validated yet), then flip writable.
  if (next != nullptr) Publish(std::move(next));
  store_ = std::move(store);
  store_ptr_.store(store_.get(), std::memory_order_release);
  RegisterDurableHealthChecks();
  read_only_.store(false, std::memory_order_release);
  obs::RecordFlight(obs::FlightKind::kServer,
                    "promoted to primary at epoch %llu (store %s)",
                    static_cast<unsigned long long>(final_epoch),
                    dir.c_str());
  return Status::OK();
}

Status ViewService::SaveLocked(const Snapshot& snap) {
  const auto start = std::chrono::steady_clock::now();
  SnapshotData data;
  data.epoch = snap.epoch;
  data.match = snap.index.match_options();
  data.database_indexed = snap.index.database_indexed();
  data.views = *snap.views;
  data.postings = snap.index.ExportPostings();
  const Status status =
      SaveSnapshot(store_->dir + "/" + SnapshotFileName(snap.epoch), data);
  StoreObs().save_seconds_full->ObserveSeconds(SecondsSince(start));
  if (!status.ok()) {
    StoreObs().save_failures_full->Add(1);
    obs::RecordFlight(obs::FlightKind::kSave,
                      "full snapshot epoch %llu failed: %s",
                      static_cast<unsigned long long>(snap.epoch),
                      status.ToString().c_str());
    return status;
  }
  StoreObs().saves_full->Add(1);
  obs::RecordFlight(obs::FlightKind::kSave,
                    "full snapshot epoch %llu saved (%zu labels)",
                    static_cast<unsigned long long>(snap.epoch),
                    snap.views->size());
  // A full snapshot roots a fresh chain: everything up to this epoch is
  // covered by one file again.
  store_->base_epoch = snap.epoch;
  store_->have_base = true;
  store_->persisted_epoch = snap.epoch;
  store_->chain_length = 0;
  store_->dirty_labels.clear();
  return Status::OK();
}

Status ViewService::SaveDeltaLocked(const Snapshot& snap) {
  const auto start = std::chrono::steady_clock::now();
  DeltaData data;
  data.epoch = snap.epoch;
  data.parent_epoch = store_->persisted_epoch;
  for (int label : store_->dirty_labels) {
    auto it = snap.views->find(label);
    if (it != snap.views->end()) data.views.emplace(label, it->second);
  }
  const Status status =
      SaveDelta(store_->dir + "/" + DeltaFileName(snap.epoch), data);
  StoreObs().save_seconds_delta->ObserveSeconds(SecondsSince(start));
  if (!status.ok()) {
    StoreObs().save_failures_delta->Add(1);
    obs::RecordFlight(obs::FlightKind::kSave,
                      "delta snapshot epoch %llu failed: %s",
                      static_cast<unsigned long long>(snap.epoch),
                      status.ToString().c_str());
    return status;
  }
  StoreObs().saves_delta->Add(1);
  obs::RecordFlight(obs::FlightKind::kSave,
                    "delta snapshot epoch %llu saved (%zu dirty labels)",
                    static_cast<unsigned long long>(snap.epoch),
                    data.views.size());
  store_->persisted_epoch = snap.epoch;
  ++store_->chain_length;
  store_->dirty_labels.clear();
  return Status::OK();
}

Result<SaveInfo> ViewService::Save(SaveKind kind) {
  if (read_only()) {
    return Status::FailedPrecondition(
        "read-only replica refuses saves (Promote() first)");
  }
  if (store_ptr_.load(std::memory_order_acquire) == nullptr) {
    return Status::FailedPrecondition(
        "Save() requires a durable service (ViewService::Open)");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const Snapshot> snap = Load();
  SaveInfo info;
  info.epoch = snap->epoch;
  const bool have_base = store_->have_base;
  const bool up_to_date = have_base && snap->epoch == store_->persisted_epoch;
  if (kind == SaveKind::kFull) {
    GVEX_RETURN_NOT_OK(SaveLocked(*snap));
    return info;
  }
  if (kind == SaveKind::kDelta) {
    if (!have_base) {
      return Status::FailedPrecondition(
          "a delta save needs a full base snapshot on disk first "
          "(Save(SaveKind::kFull) or Compact())");
    }
    info.delta = true;
    if (up_to_date) {
      info.wrote = false;  // the chain already persists this epoch
      return info;
    }
    GVEX_RETURN_NOT_OK(SaveDeltaLocked(*snap));
    return info;
  }
  // kAuto: delta when a base exists, the chain has room, and few enough
  // labels changed that rewriting the whole store is a waste of I/O.
  if (up_to_date) {
    info.wrote = false;
    return info;
  }
  const size_t total = snap->views->size();
  const bool delta_fits =
      have_base && options_.store.delta_max_chain > 0 &&
      store_->chain_length < options_.store.delta_max_chain && total > 0 &&
      static_cast<double>(store_->dirty_labels.size()) <=
          options_.store.delta_max_fraction * static_cast<double>(total);
  if (delta_fits) {
    GVEX_RETURN_NOT_OK(SaveDeltaLocked(*snap));
    info.delta = true;
    return info;
  }
  GVEX_RETURN_NOT_OK(SaveLocked(*snap));
  return info;
}

Result<uint64_t> ViewService::Compact() {
  if (read_only()) {
    return Status::FailedPrecondition(
        "read-only replica refuses compactions (Promote() first)");
  }
  if (store_ptr_.load(std::memory_order_acquire) == nullptr) {
    return Status::FailedPrecondition(
        "Compact() requires a durable service (ViewService::Open)");
  }
  // The outcome is also recorded in the store (stats() exposes it):
  // background compaction has no caller to return its status to, and a
  // silent persistent failure would just grow the WAL forever.
  const auto start = std::chrono::steady_clock::now();
  Result<uint64_t> result = [&]() -> Result<uint64_t> {
    std::lock_guard<std::mutex> lock(writer_mu_);
    std::shared_ptr<const Snapshot> snap = Load();
    GVEX_RETURN_NOT_OK(SaveLocked(*snap));
    // Every WAL record's epoch is <= the snapshot we just wrote (appends
    // serialize on writer_mu_), so the log is fully covered — which also
    // makes a failed reset retryable (see wal_needs_reset).
    store_->wal_needs_reset.store(true);
    GVEX_RETURN_NOT_OK(store_->wal.Reset());
    store_->wal_needs_reset.store(false);
    if (options_.store.prune_snapshots) {
      auto pruned = PruneSnapshots(store_->dir, snap->epoch);
      if (!pruned.ok()) return pruned.status();
      // The fresh full base covers every delta at or below it — the chain
      // folds back into a single file.
      auto delta_pruned = PruneDeltas(store_->dir, snap->epoch);
      if (!delta_pruned.ok()) return delta_pruned.status();
    }
    return snap->epoch;
  }();
  StoreObs().compaction_seconds->ObserveSeconds(SecondsSince(start));
  {
    std::lock_guard<std::mutex> lock(store_->status_mu);
    store_->last_compact_error =
        result.ok() ? "" : result.status().ToString();
  }
  if (result.ok()) {
    store_->compactions.fetch_add(1, std::memory_order_relaxed);
    obs::RecordFlight(obs::FlightKind::kCompact,
                      "compacted to epoch %llu",
                      static_cast<unsigned long long>(result.value()));
  } else {
    // The monotone counter keeps the failure visible after a later
    // success clears last_compact_error; the warning is rate-limited (a
    // small burst, then one per 5 s) so a persistently failing background
    // compactor cannot flood stderr.
    store_->compaction_failures.fetch_add(1, std::memory_order_relaxed);
    obs::RecordFlight(obs::FlightKind::kCompact, "compaction failed: %s",
                      result.status().ToString().c_str());
    static obs::RateLimiter* warn_limiter = new obs::RateLimiter(5.0, 2);
    if (warn_limiter->Allow()) {
      GVEX_LOG(kWarning) << "compaction failed: "
                         << result.status().ToString();
    }
  }
  return result;
}

void ViewService::MaybeScheduleCompact(uint64_t wal_bytes) {
  DurableStore* store = store_ptr_.load(std::memory_order_acquire);
  if (store == nullptr || options_.store.compact_wal_bytes == 0 ||
      wal_bytes < options_.store.compact_wal_bytes) {
    return;
  }
  bool expected = false;
  if (!store->compacting.compare_exchange_strong(expected, true)) {
    return;  // one compaction at a time
  }
  // compact_mu serializes handle join/assignment: another admitter that
  // wins the CAS the instant the worker clears the flag must wait here
  // until this move-assignment completed.
  std::lock_guard<std::mutex> lock(store->compact_mu);
  // The previous run's thread has finished its work (the flag was clear)
  // but may still need joining before the handle is reused.
  if (store->compactor.joinable()) store->compactor.join();
  store->compactor = std::thread([this, store] {
    // Best-effort: the WAL keeps everything recoverable, and the outcome
    // lands in last_compact_error for stats()/operators.
    (void)Compact();
    store->compacting.store(false);
  });
}

ViewServiceStats ViewService::stats() const {
  ViewServiceStats out;
  // One atomic snapshot load: epoch, label/code counts, and the admission
  // counters all describe the SAME published epoch — a stats() racing a
  // batch admission sees the batch entirely or not at all, never an epoch
  // whose counters have not been published with it.
  std::shared_ptr<const Snapshot> snap = Load();
  out.epoch = snap->epoch;
  out.num_labels = static_cast<int>(snap->views->size());
  out.num_codes = snap->index.num_codes();
  out.admitted_views = snap->admitted_views;
  out.admitted_batches = snap->admitted_batches;
  const IndexStats& istats = snap->index.stats();
  out.index_fallback_scans =
      istats.fallback_scans.load(std::memory_order_relaxed);
  out.index_inconsistent_postings =
      istats.inconsistent_postings.load(std::memory_order_relaxed);
  out.index_filtered_rejects =
      istats.filtered_rejects.load(std::memory_order_relaxed);
  // One shard lock at a time: a query records its hit or miss under
  // exactly one shard's lock, so a sequential sum can never split an
  // individual query's counters — and stats() never pauses the whole
  // cache.
  for (const auto& shard : cache_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.cache_hits += shard->hits;
    out.cache_misses += shard->misses;
  }
  DurableStore* store = store_ptr_.load(std::memory_order_acquire);
  if (store != nullptr) {
    out.compactions = store->compactions.load(std::memory_order_relaxed);
    out.compaction_failures =
        store->compaction_failures.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(store->status_mu);
    out.last_compact_error = store->last_compact_error;
  }
  return out;
}

}  // namespace gvex
