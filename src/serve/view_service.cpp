#include "serve/view_service.h"

#include <atomic>
#include <functional>
#include <utility>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gvex {

namespace {

// The initial (epoch-0) views map, shared by every service instance.
std::shared_ptr<const std::map<int, ExplanationView>> EmptyViews() {
  static const auto empty =
      std::make_shared<const std::map<int, ExplanationView>>();
  return empty;
}

// True for kinds whose answers are worth caching: the ones that historically
// cost an isomorphism scan. kLabels / kPatternsForLabel are O(1) reads of
// the snapshot — a cache would only add lock traffic.
bool Cacheable(QueryKind kind) {
  switch (kind) {
    case QueryKind::kGraphsWithPattern:
    case QueryKind::kLabelsOfPattern:
    case QueryKind::kDatabaseGraphsWithPattern:
    case QueryKind::kDiscriminativePatterns:
      return true;
    case QueryKind::kLabels:
    case QueryKind::kPatternsForLabel:
      return false;
  }
  return false;
}

std::string CacheKey(uint64_t epoch, const ViewQuery& q) {
  std::string key = StrFormat("%llu|%d|%d|",
                              static_cast<unsigned long long>(epoch),
                              static_cast<int>(q.kind), q.label);
  key += q.pattern.canonical_code();
  return key;
}

}  // namespace

ViewService::~ViewService() {
  if (store_ != nullptr) {
    std::lock_guard<std::mutex> lock(store_->compact_mu);
    if (store_->compactor.joinable()) store_->compactor.join();
  }
}

ViewService::ViewService(const GraphDatabase* db, ViewServiceOptions options)
    : db_(db), options_(options) {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = 0;
  snap->views = EmptyViews();
  snap->index = PatternIndex::Build(snap->views, db_, options_.index);
  snapshot_ = std::shared_ptr<const Snapshot>(std::move(snap));
  const int shards = std::max(1, options_.cache_shards);
  cache_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    cache_.push_back(std::make_unique<CacheShard>());
  }
  if (options_.batch_workers > 0) {
    batch_pool_ = std::make_unique<ThreadPool>(options_.batch_workers);
  }
}

std::shared_ptr<const ViewService::Snapshot> ViewService::Load() const {
  return std::atomic_load(&snapshot_);
}

void ViewService::Publish(std::shared_ptr<const Snapshot> snap) {
  std::atomic_store(&snapshot_, std::move(snap));
}

Result<uint64_t> ViewService::AdmitView(ExplanationView view) {
  std::vector<ExplanationView> one;
  one.push_back(std::move(view));
  return AdmitViews(std::move(one));
}

Result<uint64_t> ViewService::AdmitViews(std::vector<ExplanationView> views) {
  if (views.empty()) {
    return Status::InvalidArgument("no views to admit");
  }
  for (const ExplanationView& v : views) {
    if (v.label < 0) {
      return Status::InvalidArgument("cannot admit a view without a label");
    }
  }
  uint64_t published = 0;
  uint64_t wal_bytes = 0;
  {
    // Writers serialize here; readers are untouched. Everything below —
    // the WAL append, the views-map copy, and the index rebuild — happens
    // on the NEXT snapshot, off to the side of the published one.
    std::lock_guard<std::mutex> lock(writer_mu_);
    std::shared_ptr<const Snapshot> cur = Load();
    published = cur->epoch + 1;
    if (store_ != nullptr) {
      // Log-before-publish: if the append fails, nothing was admitted —
      // the caller sees the error and the published state is unchanged.
      WalRecord record;
      record.epoch = published;
      record.views = views;  // copy; `views` still moves into the snapshot
      GVEX_RETURN_NOT_OK(store_->wal.Append(record));
    }
    auto next_views =
        std::make_shared<std::map<int, ExplanationView>>(*cur->views);
    for (ExplanationView& v : views) {
      (*next_views)[v.label] = std::move(v);
    }
    auto next = std::make_shared<Snapshot>();
    next->epoch = published;
    next->views = std::move(next_views);
    next->index = PatternIndex::Build(next->views, db_, options_.index);
    Publish(std::move(next));
    wal_bytes = store_ != nullptr ? store_->wal.file_bytes() : 0;
  }
  // Outside the writer lock: compaction takes the lock itself.
  MaybeScheduleCompact(wal_bytes);
  return published;
}

uint64_t ViewService::epoch() const { return Load()->epoch; }

ViewQueryResult ViewService::Execute(const Snapshot& snap,
                                     const ViewQuery& q) const {
  ViewQueryResult out;
  out.epoch = snap.epoch;
  switch (q.kind) {
    case QueryKind::kLabels:
      out.ids = snap.index.Labels();
      break;
    case QueryKind::kPatternsForLabel:
      out.patterns = snap.index.PatternsForLabel(q.label);
      break;
    case QueryKind::kGraphsWithPattern:
      out.ids = snap.index.GraphsWithPattern(q.label, q.pattern);
      break;
    case QueryKind::kLabelsOfPattern:
      out.ids = snap.index.LabelsOfPattern(q.pattern);
      break;
    case QueryKind::kDatabaseGraphsWithPattern:
      out.ids = snap.index.DatabaseGraphsWithPattern(q.pattern, q.label);
      break;
    case QueryKind::kDiscriminativePatterns:
      out.patterns = snap.index.DiscriminativePatterns(q.label);
      break;
  }
  return out;
}

ViewQueryResult ViewService::ExecuteCached(const Snapshot& snap,
                                           const ViewQuery& q) const {
  if (options_.cache_capacity == 0 || !Cacheable(q.kind)) {
    return Execute(snap, q);
  }
  const std::string key = CacheKey(snap.epoch, q);
  CacheShard& shard =
      *cache_[std::hash<std::string>()(key) % cache_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      // Refresh LRU position.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->result;
    }
    ++shard.misses;
  }
  // Compute outside the lock — a slow query must not serialize the shard.
  ViewQueryResult result = Execute(snap, q);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      shard.lru.push_front(CacheShard::Entry{key, result});
      shard.map[key] = shard.lru.begin();
      while (shard.map.size() > options_.cache_capacity) {
        shard.map.erase(shard.lru.back().key);
        shard.lru.pop_back();
      }
    }
  }
  return result;
}

std::vector<int> ViewService::Labels() const {
  return Load()->index.Labels();
}

std::vector<Pattern> ViewService::PatternsForLabel(int label) const {
  return Load()->index.PatternsForLabel(label);
}

std::vector<int> ViewService::GraphsWithPattern(int label,
                                                const Pattern& p) const {
  ViewQuery q;
  q.kind = QueryKind::kGraphsWithPattern;
  q.label = label;
  q.pattern = p;
  return ExecuteCached(*Load(), q).ids;
}

std::vector<int> ViewService::LabelsOfPattern(const Pattern& p) const {
  ViewQuery q;
  q.kind = QueryKind::kLabelsOfPattern;
  q.pattern = p;
  return ExecuteCached(*Load(), q).ids;
}

std::vector<int> ViewService::DatabaseGraphsWithPattern(const Pattern& p,
                                                        int label) const {
  ViewQuery q;
  q.kind = QueryKind::kDatabaseGraphsWithPattern;
  q.label = label;
  q.pattern = p;
  return ExecuteCached(*Load(), q).ids;
}

std::vector<Pattern> ViewService::DiscriminativePatterns(int label) const {
  ViewQuery q;
  q.kind = QueryKind::kDiscriminativePatterns;
  q.label = label;
  return ExecuteCached(*Load(), q).patterns;
}

std::vector<ViewQueryResult> ViewService::ExecuteBatch(
    const std::vector<ViewQuery>& queries, int num_threads) const {
  // One snapshot for the whole batch: every answer shares an epoch, and the
  // batch is immune to concurrent admissions.
  std::shared_ptr<const Snapshot> snap = Load();
  std::vector<ViewQueryResult> results(queries.size());
  const int n = static_cast<int>(queries.size());
  const auto run_shard = [&](const Shard& shard) {
    for (int i = shard.begin; i < shard.end; ++i) {
      results[static_cast<size_t>(i)] =
          ExecuteCached(*snap, queries[static_cast<size_t>(i)]);
    }
  };
  // Results are slot-indexed, so the output is identical whichever pool
  // (persistent or transient) runs the shards, and for any worker count.
  if (batch_pool_ != nullptr) {
    batch_pool_->RunSharded(batch_pool_->num_threads() * 4, n, run_shard);
  } else {
    const int threads = std::max(1, num_threads);
    ThreadPool::ParallelForShards(threads, threads * 4, n, run_shard);
  }
  return results;
}

// --- Durable storage -----------------------------------------------------

const std::string& ViewService::store_dir() const {
  static const std::string empty;
  return store_ != nullptr ? store_->dir : empty;
}

Result<std::unique_ptr<ViewService>> ViewService::Open(
    const std::string& dir, const GraphDatabase* db,
    ViewServiceOptions options) {
  GVEX_RETURN_NOT_OK(EnsureDir(dir));

  // Newest snapshot that validates wins; older ones are fallbacks against
  // a corrupted latest file (atomic writes make that unlikely, torn disks
  // happen anyway).
  GVEX_ASSIGN_OR_RETURN(std::vector<uint64_t> epochs, ListSnapshotEpochs(dir));
  SnapshotData snapshot;
  bool have_snapshot = false;
  std::string last_error;
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    auto loaded = LoadSnapshot(dir + "/" + SnapshotFileName(*it));
    if (loaded.ok()) {
      snapshot = std::move(loaded).value();
      have_snapshot = true;
      break;
    }
    last_error = loaded.status().ToString();
  }
  if (!have_snapshot && !epochs.empty()) {
    return Status::IOError(
        StrFormat("no snapshot in %s validates (last error: %s)",
                  dir.c_str(), last_error.c_str()));
  }

  // WAL replay: admissions newer than the snapshot, longest valid prefix.
  const std::string wal_path = dir + "/" + WalFileName();
  WalReplay replay;
  auto replayed = ReplayWal(wal_path);
  if (replayed.ok()) {
    replay = std::move(replayed).value();
  } else if (!replayed.status().IsNotFound()) {
    return replayed.status();
  }

  auto service =
      std::unique_ptr<ViewService>(new ViewService(db, options));

  uint64_t epoch = snapshot.epoch;
  auto views =
      std::make_shared<std::map<int, ExplanationView>>(std::move(snapshot.views));
  bool replayed_any = false;
  for (WalRecord& record : replay.records) {
    if (record.epoch <= epoch) continue;  // already folded into the snapshot
    for (ExplanationView& v : record.views) {
      (*views)[v.label] = std::move(v);
    }
    epoch = record.epoch;
    replayed_any = true;
  }

  // Fail-stop on provable data loss: a snapshot FILE for a newer epoch
  // exists (that state was once acknowledged) but neither a valid
  // snapshot nor the WAL can reach it — e.g. the newest snapshot is
  // corrupt and Compact already reset the WAL. Serving the older state
  // silently would drop acknowledged admissions; make the operator decide
  // (delete the corrupt file to accept the rollback).
  if (!epochs.empty() && epoch < epochs.back()) {
    return Status::IOError(StrFormat(
        "recovery reaches epoch %llu but %s/%s exists and does not load — "
        "acknowledged state would be lost; delete the corrupt snapshot to "
        "accept rolling back",
        static_cast<unsigned long long>(epoch), dir.c_str(),
        SnapshotFileName(epochs.back()).c_str()));
  }

  if (epoch > 0) {
    auto next = std::make_shared<Snapshot>();
    next->epoch = epoch;
    next->views = std::move(views);
    if (replayed_any) {
      // WAL admissions changed the view set — one scratch index build
      // over the recovered state.
      next->index = PatternIndex::Build(next->views, db, options.index);
    } else {
      // Pure-snapshot warm start: decode the postings, skip the
      // isomorphism cross-product entirely.
      next->index =
          PatternIndex::FromStored(next->views, db, snapshot.match,
                                   snapshot.database_indexed,
                                   snapshot.postings);
    }
    service->Publish(std::move(next));
  }

  auto store = std::make_unique<DurableStore>();
  store->dir = dir;
  store->wal.set_sync_every(options.store.wal_sync_every);
  // Dropping a torn tail here is safe: those bytes never published (the
  // WAL is written before the snapshot swap, so at worst the tail is an
  // admission whose caller never saw success).
  GVEX_RETURN_NOT_OK(store->wal.Open(wal_path, replay.valid_bytes));
  service->store_ = std::move(store);
  return service;
}

Status ViewService::SaveLocked(const Snapshot& snap) {
  SnapshotData data;
  data.epoch = snap.epoch;
  data.match = snap.index.match_options();
  data.database_indexed = snap.index.database_indexed();
  data.views = *snap.views;
  data.postings = snap.index.ExportPostings();
  return SaveSnapshot(store_->dir + "/" + SnapshotFileName(snap.epoch), data);
}

Result<uint64_t> ViewService::Save() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "Save() requires a durable service (ViewService::Open)");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const Snapshot> snap = Load();
  GVEX_RETURN_NOT_OK(SaveLocked(*snap));
  return snap->epoch;
}

Result<uint64_t> ViewService::Compact() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "Compact() requires a durable service (ViewService::Open)");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const Snapshot> snap = Load();
  GVEX_RETURN_NOT_OK(SaveLocked(*snap));
  // Every WAL record's epoch is <= the snapshot we just wrote (appends
  // serialize on writer_mu_), so the log is fully covered.
  GVEX_RETURN_NOT_OK(store_->wal.Reset());
  if (options_.store.prune_snapshots) {
    auto pruned = PruneSnapshots(store_->dir, snap->epoch);
    if (!pruned.ok()) return pruned.status();
  }
  return snap->epoch;
}

void ViewService::MaybeScheduleCompact(uint64_t wal_bytes) {
  if (store_ == nullptr || options_.store.compact_wal_bytes == 0 ||
      wal_bytes < options_.store.compact_wal_bytes) {
    return;
  }
  bool expected = false;
  if (!store_->compacting.compare_exchange_strong(expected, true)) {
    return;  // one compaction at a time
  }
  // compact_mu serializes handle join/assignment: another admitter that
  // wins the CAS the instant the worker clears the flag must wait here
  // until this move-assignment completed.
  std::lock_guard<std::mutex> lock(store_->compact_mu);
  // The previous run's thread has finished its work (the flag was clear)
  // but may still need joining before the handle is reused.
  if (store_->compactor.joinable()) store_->compactor.join();
  store_->compactor = std::thread([this] {
    (void)Compact();  // best-effort; the WAL keeps everything recoverable
    store_->compacting.store(false);
  });
}

ViewServiceStats ViewService::stats() const {
  ViewServiceStats out;
  std::shared_ptr<const Snapshot> snap = Load();
  out.epoch = snap->epoch;
  out.num_labels = static_cast<int>(snap->views->size());
  out.num_codes = snap->index.num_codes();
  for (const auto& shard : cache_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.cache_hits += shard->hits;
    out.cache_misses += shard->misses;
  }
  return out;
}

}  // namespace gvex
