// Deterministic synthetic (database, view set) generators for the serving
// subsystem's tests and benchmarks — NOT part of the serving API. One
// shared implementation keeps the store the oracle-parity tests pin and
// the store the serving benchmark times structurally identical: random
// connected graphs, explanation subgraphs as random connected subsets,
// tier patterns extracted from those subgraphs. Header-only; fixture-free
// (no model training), so suites built on it stay smoke-fast.

#ifndef GVEX_SERVE_SYNTHETIC_STORE_H_
#define GVEX_SERVE_SYNTHETIC_STORE_H_

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "explain/explanation.h"
#include "graph/graph_database.h"
#include "graph/subgraph.h"
#include "pattern/pattern.h"
#include "util/rng.h"

namespace gvex {
namespace synthetic {

/// Random connected graph: spanning tree plus extra edges; node types drawn
/// from [0, num_types). With `extra_edge_prob` == 0 the extras are n/3
/// random pairs (the historical shape — same rng stream as ever); a
/// positive probability instead flips a coin per node pair, yielding the
/// dense graphs the matcher benchmarks stress.
inline Graph RandomConnectedGraph(Rng* rng, int min_nodes, int max_nodes,
                                  int num_types,
                                  double extra_edge_prob = 0.0) {
  const int n = static_cast<int>(rng->NextInt(min_nodes, max_nodes));
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddNode(static_cast<int>(rng->NextInt(0, num_types - 1)));
  }
  for (NodeId v = 1; v < n; ++v) {
    (void)g.AddEdge(v, static_cast<NodeId>(rng->NextUint(
                           static_cast<uint64_t>(v))));
  }
  if (extra_edge_prob > 0.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng->NextDouble() < extra_edge_prob) (void)g.AddEdge(u, v);
      }
    }
    return g;
  }
  const int extra = n / 3;
  for (int i = 0; i < extra; ++i) {
    const NodeId u =
        static_cast<NodeId>(rng->NextUint(static_cast<uint64_t>(n)));
    const NodeId v =
        static_cast<NodeId>(rng->NextUint(static_cast<uint64_t>(n)));
    if (u != v) (void)g.AddEdge(u, v);  // duplicates rejected, fine
  }
  return g;
}

/// Connected node subset of `g`: BFS from a random start, first `k` visited.
inline std::vector<NodeId> RandomConnectedSubset(const Graph& g, Rng* rng,
                                                 int k) {
  std::vector<NodeId> order;
  std::vector<bool> seen(static_cast<size_t>(g.num_nodes()), false);
  std::vector<NodeId> frontier{static_cast<NodeId>(
      rng->NextUint(static_cast<uint64_t>(g.num_nodes())))};
  seen[static_cast<size_t>(frontier[0])] = true;
  while (!frontier.empty() && static_cast<int>(order.size()) < k) {
    const NodeId v = frontier.front();
    frontier.erase(frontier.begin());
    order.push_back(v);
    for (const Neighbor& nb : g.neighbors(v)) {
      if (!seen[static_cast<size_t>(nb.node)]) {
        seen[static_cast<size_t>(nb.node)] = true;
        frontier.push_back(nb.node);
      }
    }
  }
  std::sort(order.begin(), order.end());
  return order;
}

/// Random small pattern extracted from `g` (min..max nodes, connected —
/// BFS subsets are connected by construction, so Create cannot fail).
inline Pattern RandomPatternFrom(const Graph& g, Rng* rng, int min_nodes,
                                 int max_nodes) {
  const int k = static_cast<int>(rng->NextInt(min_nodes, max_nodes));
  auto nodes = RandomConnectedSubset(g, rng, k);
  auto sub = ExtractInducedSubgraph(g, nodes);
  return std::move(Pattern::Create(std::move(sub).value().graph)).value();
}

/// Shape knobs for MakeSyntheticStore.
struct SyntheticStoreOptions {
  int num_labels = 3;
  int graphs_per_label = 6;
  int patterns_per_label = 8;
  int min_nodes = 8;          ///< per database graph
  int max_nodes = 14;
  int num_types = 3;
  int pattern_min_nodes = 1;  ///< per tier pattern
  int pattern_max_nodes = 4;
  /// Explanation subgraphs take ceil-ish subgraph_num/subgraph_den of each
  /// graph's nodes (+1 so they are never empty).
  int subgraph_num = 1;
  int subgraph_den = 2;
  /// Passed through to RandomConnectedGraph for the database graphs;
  /// 0 keeps the historical sparse shape (and rng stream) untouched.
  double extra_edge_prob = 0.0;
};

/// A synthetic database with one randomized view per label.
struct SyntheticStore {
  GraphDatabase db;
  std::vector<ExplanationView> views;
};

/// Builds `num_labels` label groups of random graphs; each label's view has
/// one explanation subgraph per graph (a random connected subset) and up to
/// `patterns_per_label` distinct tier patterns extracted from those
/// subgraphs. Same seed + options => identical store.
inline SyntheticStore MakeSyntheticStore(
    uint64_t seed, const SyntheticStoreOptions& opt = {}) {
  Rng rng(seed);
  SyntheticStore store;
  for (int label = 0; label < opt.num_labels; ++label) {
    ExplanationView view;
    view.label = label;
    for (int i = 0; i < opt.graphs_per_label; ++i) {
      Graph g = RandomConnectedGraph(&rng, opt.min_nodes, opt.max_nodes,
                                     opt.num_types, opt.extra_edge_prob);
      const int gi = store.db.Add(g, label);
      ExplanationSubgraph sub;
      sub.graph_index = gi;
      sub.nodes = RandomConnectedSubset(
          g, &rng, g.num_nodes() * opt.subgraph_num / opt.subgraph_den + 1);
      sub.subgraph =
          std::move(ExtractInducedSubgraph(g, sub.nodes)).value().graph;
      sub.explainability = rng.NextDouble();
      view.subgraphs.push_back(std::move(sub));
      view.explainability += view.subgraphs.back().explainability;
    }
    std::set<std::string> codes;
    int attempts = 0;
    while (static_cast<int>(view.patterns.size()) < opt.patterns_per_label &&
           attempts < opt.patterns_per_label * 40) {
      ++attempts;
      const auto& src =
          view.subgraphs[rng.NextUint(view.subgraphs.size())].subgraph;
      if (src.num_nodes() == 0) continue;
      Pattern p = RandomPatternFrom(src, &rng, opt.pattern_min_nodes,
                                    opt.pattern_max_nodes);
      if (codes.insert(p.canonical_code()).second) {
        view.patterns.push_back(std::move(p));
      }
    }
    store.views.push_back(std::move(view));
  }
  return store;
}

/// Convenience overload: default shape with `num_labels` labels.
inline SyntheticStore MakeSyntheticStore(uint64_t seed, int num_labels) {
  SyntheticStoreOptions opt;
  opt.num_labels = num_labels;
  return MakeSyntheticStore(seed, opt);
}

/// Version `version` of a label's view: the same patterns rotated by
/// `version`. Distinct versions are observably different (tier order is
/// part of every answer), deterministic, and cheap to regenerate anywhere
/// — the admission workload for the crash/interleaving harness and the
/// store benchmarks.
inline ExplanationView VersionedView(const SyntheticStore& store, int label,
                                     int version) {
  ExplanationView view = store.views[static_cast<size_t>(label)];
  const size_t n = view.patterns.size();
  if (n > 1) {
    std::vector<Pattern> rotated;
    rotated.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rotated.push_back(
          view.patterns[(i + static_cast<size_t>(version)) % n]);
    }
    view.patterns = std::move(rotated);
  }
  return view;
}

}  // namespace synthetic
}  // namespace gvex

#endif  // GVEX_SERVE_SYNTHETIC_STORE_H_
