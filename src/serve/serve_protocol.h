// Line-oriented request/response protocol for the view-serving subsystem —
// what gvex_serve speaks on stdin/stdout. Payloads reuse the existing text
// formats: patterns are graph blocks (graph_io.h, terminated by "end") and
// admitted views are view blocks (view_io.h, terminated by "endview").
//
// Requests (one keyword line, optionally followed by a payload block):
//   labels                         -> ok <n> / ids <l...>
//   patterns <label>               -> ok <n> / n x ("pattern" + graph block)
//   graphs <label>                 -> ok <n> / ids <graph indices>
//     <graph block>                   (graphs of the label group whose
//                                      explanation subgraph contains P)
//   labelsof                       -> ok <n> / ids <labels>
//     <graph block>
//   dbgraphs <label|-1>            -> ok <n> / ids <database graph indices>
//     <graph block>
//   discriminative <label>         -> ok <n> / n x ("pattern" + graph block)
//   graphsall <label> <k>          -> ok <n> / ids <graph indices>
//     k x <graph block>               (graphs of the label group whose
//                                      explanation subgraph contains ALL k
//                                      patterns — one batched bitset pass;
//                                      k = 0 answers every graph of the
//                                      label)
//   mcs <label>                    -> ok mcs graph <g> size <s> exact <0|1>
//     <graph block>                   (approximate query: the label's
//                                      explanation subgraph sharing the
//                                      largest common induced subgraph with
//                                      the query graph, budgeted McSplit
//                                      search; the query graph may be
//                                      disconnected; exact 0 = the step
//                                      budget bound somewhere, size is a
//                                      lower bound; graph -1 = label
//                                      unknown or no common subgraph)
//   admit                          -> ok admitted <label> epoch <e>
//     <view block>                    (live admission: published as a new
//                                      snapshot without blocking readers)
//   stats                          -> ok stats epoch <e> labels <n> codes <c>
//                                       admitted <v> batches <b>
//                                       cache_hits <h> cache_misses <m>
//                                       hit_rate <r> uptime_sec <u>
//                                       started_unix <t>
//                                      (r = hits / (hits + misses), 0 when
//                                       the cache has seen no lookups;
//                                       epoch/labels/codes/admitted/batches
//                                       come from ONE published snapshot —
//                                       never a torn mid-batch view;
//                                       admitted/batches count since this
//                                       service was constructed/Opened,
//                                       like the cache counters — they are
//                                       not persisted across restarts;
//                                       uptime_sec/started_unix anchor the
//                                       process-lifetime counters: u =
//                                       seconds since process start, t =
//                                       that start as a unix epoch)
//   metrics                        -> ok metrics <n> / n lines of
//                                      Prometheus-style exposition text
//                                      (per-verb latency histograms, WAL +
//                                      admission + net counters; see
//                                      docs/OBSERVABILITY.md for names)
//   trace on [N] | trace off       -> ok trace on <N> / ok trace off
//                                      (samples every Nth request into the
//                                       global trace ring; on without N
//                                       keeps the configured period, or 1)
//   traces                         -> ok traces <n> / n x ("trace <verb>
//                                      frame_us <f> queue_us <q>
//                                      execute_us <e> flush_us <w>"),
//                                      oldest first
//   health                         -> ok health <ok|degraded|fail>
//                                      checks <n> / n x ("check <name>
//                                      <ok|degraded|fail> <reason>")
//                                      (one Evaluate() pass over the
//                                       process health registry: WAL
//                                       appendable, store LOCK held, worker
//                                       heartbeats fresh, admit leader not
//                                       wedged, compaction backlog bounded)
//   events                         -> ok events <n> / n x ("event <seq>
//                                      <unix_ms> <kind> <text>"), the
//                                      flight-recorder ring oldest first
//                                      (kinds: epoch save compact drain
//                                       frame_error backpressure health
//                                       watchdog server crash)
//   open <dir>                     -> ok open <dir> epoch <e> labels <n>
//                                      (switches the SESSION onto a durable
//                                       ViewService::Open(dir) service;
//                                       session-owned — needs ServeSession)
//   save [--delta|--full]          -> ok saved epoch <e> <full|delta|noop>
//                                      (no flag: the size policy picks;
//                                       noop = the epoch was already
//                                       persisted, nothing written)
//   compact                        -> ok compacted epoch <e>
//                                      (save/compact answer "err ..." on a
//                                       service without a store directory)
//   replicate state                -> ok replstate epoch <e> wal_bytes <b>
//                                      wal_has <0|1> wal_first <f> files <n>
//                                      / n x ("file <name> <bytes>")
//                                      (the primary's store manifest: WAL
//                                       size + generation identity plus
//                                       every snapshot/delta file — what a
//                                       replica applier reconciles against)
//   replicate fetch <name> <offset> <maxlen>
//                                  -> ok replchunk <n> <hex>
//                                      (up to maxlen bytes of the named
//                                       store file from `offset`, hex on
//                                       one line; n = 0 past EOF, and the
//                                       server clamps maxlen to 4 MiB)
//   replicate crc <name> <bytes>   -> ok replcrc <crc32-hex>
//                                      (CRC32 of the file's first `bytes`
//                                       bytes — the divergence probe: equal
//                                       prefixes CRC equal, a mismatch over
//                                       a shared WAL generation fail-stops
//                                       the replica)
//                                      (all three replicate ops are READ
//                                       ONLY, so replicas can chain)
//   promote                        -> ok promoted epoch <e>
//                                      (flips a read-only replica writable
//                                       after the recovery verdict; via the
//                                       session's applier hook when one is
//                                       attached — "err ..." on a primary)
//   quit                           -> ok bye
//
// Malformed input answers "err <message>" and parsing resumes at the next
// keyword line. Blank lines between requests are ignored.
//
// Replica mode: on a read-only replica service every mutating verb —
// admit, save, compact, and the session's open — answers exactly
// "err read-only replica" (and bumps gvex_replica_refused_total); queries
// and observability verbs work normally, `stats` reports the role (and
// replication lag when the session has a lag probe), and `promote` flips
// the SAME live sessions writable — the refusal is checked per request,
// not captured at connect time.
//
// Thread-safety: the parser is pure; HandleRequest only calls the
// (concurrency-safe) ViewService API, so multiple protocol sessions may
// share one service. A ServeSession, by contrast, is single-session state
// (the `open` verb swaps which service it talks to).

#ifndef GVEX_SERVE_SERVE_PROTOCOL_H_
#define GVEX_SERVE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "explain/explanation.h"
#include "pattern/pattern.h"
#include "serve/replica_applier.h"
#include "serve/view_service.h"
#include "util/status.h"

namespace gvex {

/// One parsed protocol request.
struct ServeRequest {
  enum class Kind {
    kLabels,
    kPatterns,
    kGraphs,
    kLabelsOf,
    kDbGraphs,
    kDiscriminative,
    kGraphsAll,
    kMcs,
    kAdmit,
    kStats,
    kMetrics,
    kTrace,
    kTraces,
    kHealth,
    kEvents,
    kOpen,
    kSave,
    kCompact,
    kReplicate,
    kPromote,
    kQuit,
  };
  /// One past the largest Kind value (for per-verb instrument tables).
  static constexpr int kNumKinds = static_cast<int>(Kind::kQuit) + 1;
  Kind kind = Kind::kLabels;
  int label = -1;
  Pattern pattern;       ///< For kGraphs / kLabelsOf / kDbGraphs.
  /// For kGraphsAll: the conjunction of patterns to intersect.
  std::vector<Pattern> patterns;
  /// For kMcs: the query graph (may be disconnected — it is not a Pattern).
  Graph query_graph;
  ExplanationView view;  ///< For kAdmit.
  std::string dir;       ///< For kOpen.
  /// For kSave: plain `save` is kAuto (the service's size policy picks
  /// full vs delta), `save --delta` forces an incremental snapshot,
  /// `save --full` a whole-epoch one.
  SaveKind save_kind = SaveKind::kAuto;
  /// For kTrace: enable sampling, and the period (0 = keep the configured
  /// period, enabling with 1 if none was set).
  bool trace_on = false;
  int trace_sample = 0;
  /// For kReplicate: which replication op.
  enum class ReplOp { kState, kFetch, kCrc };
  ReplOp repl_op = ReplOp::kState;
  std::string repl_name;     ///< fetch/crc: the store file name
  uint64_t repl_offset = 0;  ///< fetch: starting byte
  uint64_t repl_len = 0;     ///< fetch: max bytes; crc: prefix length
};

/// Per-connection protocol state. `service` is the current target; the
/// `open` verb creates a durable service over a store directory (with the
/// session's database and options) and swaps the session onto it, keeping
/// ownership in `owned`. Sessions wrapping an externally owned service
/// just leave `owned` null.
struct ServeSession {
  ViewService* service = nullptr;
  std::unique_ptr<ViewService> owned;
  /// Database/options handed to services the `open` verb creates.
  const GraphDatabase* db = nullptr;
  ViewServiceOptions options;
  /// Set by hosts running a replica applier: the `promote` verb invokes it
  /// (stop shipping, release the applier's LOCK, promote the service) and
  /// answers the promoted epoch. Without it, `promote` falls back to
  /// ViewService::Promote directly.
  std::function<Result<uint64_t>()> promote;
  /// Replica hosts: appended to `stats` as ` lag_epochs <e> lag_bytes <b>`.
  std::function<ReplicationLag()> lag_probe;
};

/// Stable lowercase name of a verb for metric labels ("labels", "admit",
/// ...). Never null.
const char* ServeVerbName(ServeRequest::Kind kind);

/// The full Prometheus-style exposition text the `metrics` verb and
/// `gvex_netserve --metrics-dump` emit: every registered obs family plus
/// a service section (epoch, label/code counts, admission + cache + index
/// + compaction counters read from `service->stats()`) and process
/// uptime/start gauges. `service` may be null (registry families only).
std::string RenderMetricsText(const ViewService* service);

/// How many payload blocks follow `head`'s keyword line (the
/// whitespace-split first line of a request), and which line closes each
/// of them. Returns 0 for block-less (and unknown) requests. This is the
/// framing knowledge shared by every byte-stream front end — the stdin
/// read loop (tools/gvex_serve) and the TCP incremental framer (net/) —
/// so a request is only handed to the parser once it is COMPLETE.
int ServeRequestShape(const std::vector<std::string>& head,
                      std::string* terminator);

/// Parses one request starting at lines[*pos] (blank lines skipped) and
/// advances *pos past it — past the payload block too, so a malformed
/// request does not desynchronize the stream. Returns NotFound at end of
/// input, InvalidArgument on malformed requests.
Result<ServeRequest> ParseServeRequest(const std::vector<std::string>& lines,
                                       size_t* pos);

/// Executes one request against a session; returns the newline-terminated
/// response text. The `open` verb mutates the session.
std::string HandleServeRequest(ServeSession* session, const ServeRequest& req);

/// Convenience overload for a bare service (no session state): `open`
/// answers an error, everything else behaves identically.
std::string HandleServeRequest(ViewService* service, const ServeRequest& req);

/// Parses and executes every request in `text`, concatenating responses.
/// `quit` (optional) is set when a quit request was seen — callers running
/// a read loop should stop feeding input then.
std::string ServeText(ServeSession* session, const std::string& text,
                      bool* quit = nullptr);

/// Bare-service overload: a temporary session lives for this call only, so
/// an `open` in `text` affects later requests of the SAME call and is then
/// dropped. Long-lived callers (gvex_serve) hold a ServeSession instead.
std::string ServeText(ViewService* service, const std::string& text,
                      bool* quit = nullptr);

}  // namespace gvex

#endif  // GVEX_SERVE_SERVE_PROTOCOL_H_
