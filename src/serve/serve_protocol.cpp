#include "serve/serve_protocol.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <utility>

#include "explain/view_io.h"
#include "graph/graph_io.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace gvex {

namespace {

// Collects lines from *pos up to and including the `terminator` line and
// returns them joined; advances *pos past the terminator.
Result<std::string> CollectBlock(const std::vector<std::string>& lines,
                                 size_t* pos, const std::string& terminator) {
  std::string block;
  while (*pos < lines.size()) {
    const std::string& line = lines[*pos];
    block += line + "\n";
    ++*pos;
    if (Trim(line) == terminator) return block;
  }
  return Status::InvalidArgument("unterminated '" + terminator + "' block");
}

Result<Pattern> ParsePatternBlock(const std::vector<std::string>& lines,
                                  size_t* pos) {
  auto block = CollectBlock(lines, pos, "end");
  if (!block.ok()) return block.status();
  auto graphs = ParseGraphs(block.value());
  if (!graphs.ok()) return graphs.status();
  if (graphs.value().size() != 1) {
    return Status::InvalidArgument("expected exactly one pattern graph");
  }
  return Pattern::Create(std::move(graphs.value()[0].graph));
}

Result<int> ParseLabelArg(const std::vector<std::string>& head) {
  if (head.size() < 2) {
    return Status::InvalidArgument("'" + head[0] + "' needs a label");
  }
  int label = 0;
  // Full consumption: "1x" is a typo, not label 1.
  if (ParseInt(head[1], &label)) return label;
  return Status::InvalidArgument("bad label '" + head[1] + "'");
}

std::string FormatIds(const std::vector<int>& ids) {
  std::string out = StrFormat("ok %zu\n", ids.size());
  if (!ids.empty()) {
    out += "ids";
    for (int id : ids) out += StrFormat(" %d", id);
    out += "\n";
  }
  return out;
}

std::string FormatPatterns(const std::vector<Pattern>& patterns) {
  std::string out = StrFormat("ok %zu\n", patterns.size());
  for (const Pattern& p : patterns) {
    out += "pattern\n";
    out += SerializeGraph(p.graph());
  }
  return out;
}

// The observability verbs need no service (`metrics` renders only the
// registry families without one), so both HandleServeRequest overloads —
// and serviceless sessions — route them here.
std::string HandleObservabilityRequest(const ViewService* service,
                                       const ServeRequest& req) {
  switch (req.kind) {
    case ServeRequest::Kind::kMetrics: {
      const std::string body = RenderMetricsText(service);
      return StrFormat("ok metrics %zu\n",
                       static_cast<size_t>(
                           std::count(body.begin(), body.end(), '\n'))) +
             body;
    }
    case ServeRequest::Kind::kTrace: {
      if (!req.trace_on) {
        obs::SetTraceSampleEvery(0);
        return "ok trace off\n";
      }
      int every = req.trace_sample;
      if (every <= 0) every = std::max(1, obs::TraceSampleEvery());
      obs::SetTraceSampleEvery(every);
      return StrFormat("ok trace on %d\n", every);
    }
    case ServeRequest::Kind::kTraces: {
      const std::vector<obs::TraceSpans> dump = obs::GlobalTraceRing().Dump();
      std::string out = StrFormat("ok traces %zu\n", dump.size());
      for (const obs::TraceSpans& t : dump) {
        out += StrFormat(
            "trace %s frame_us %.1f queue_us %.1f execute_us %.1f "
            "flush_us %.1f\n",
            t.verb.c_str(), t.frame_us, t.queue_us, t.execute_us, t.flush_us);
      }
      return out;
    }
    case ServeRequest::Kind::kHealth: {
      const obs::HealthReport report = obs::Health().Evaluate();
      return "ok " + obs::RenderHealthText(report);
    }
    case ServeRequest::Kind::kEvents: {
      const std::vector<obs::FlightEvent> dump = obs::Flight().Dump();
      std::string out = StrFormat("ok events %zu\n", dump.size());
      for (const obs::FlightEvent& ev : dump) {
        out += StrFormat("event %llu %lld %s %s\n",
                         static_cast<unsigned long long>(ev.seq),
                         static_cast<long long>(ev.unix_ms),
                         obs::FlightKindName(ev.kind), ev.text.c_str());
      }
      return out;
    }
    default:
      return "err unreachable\n";
  }
}

/// The per-verb instruments ServeText records into. Looked up once per
/// process (function-local static) so the hot path never touches the
/// registry lock.
struct VerbInstruments {
  obs::Histogram* latency;
  obs::Counter* total;
  obs::Counter* errors;
};

const VerbInstruments& InstrumentsFor(ServeRequest::Kind kind) {
  static const std::array<VerbInstruments, ServeRequest::kNumKinds>* table =
      [] {
        auto* t = new std::array<VerbInstruments, ServeRequest::kNumKinds>();
        for (int i = 0; i < ServeRequest::kNumKinds; ++i) {
          const char* verb =
              ServeVerbName(static_cast<ServeRequest::Kind>(i));
          (*t)[i].latency = obs::Metrics().GetHistogram(
              "gvex_request_seconds",
              "Request execute latency (parse excluded), per verb",
              obs::Unit::kNanoseconds, "verb", verb);
          (*t)[i].total = obs::Metrics().GetCounter(
              "gvex_requests_total", "Requests executed, per verb", "verb",
              verb);
          (*t)[i].errors = obs::Metrics().GetCounter(
              "gvex_request_errors_total",
              "Requests answered with an err line, per verb (verb=\"parse\" "
              "counts requests that never parsed)",
              "verb", verb);
        }
        return t;
      }();
  return (*table)[static_cast<int>(kind)];
}

obs::Counter* ReplicaRefusedCounter() {
  static obs::Counter* counter = obs::Metrics().GetCounter(
      "gvex_replica_refused_total",
      "Mutating requests refused because this service is a read-only "
      "replica");
  return counter;
}

/// The exact refusal every mutating verb answers on a replica — tests and
/// clients match this string verbatim.
std::string RefuseReadOnly() {
  ReplicaRefusedCounter()->Add(1);
  return "err read-only replica\n";
}

/// Hard ceiling on one `replicate fetch` answer (before hex doubling).
constexpr uint64_t kMaxReplChunkBytes = 4ull << 20;

std::string HandleReplicateRequest(ViewService* service,
                                   const ServeRequest& req) {
  const std::string& dir = service->replication_dir();
  if (dir.empty()) {
    return "err service has no store directory to replicate\n";
  }
  // A fresh source per request: replication state lives on disk, not in
  // the session, so any number of replicas may stream concurrently.
  ReplicationSource source(dir, [service] { return service->epoch(); });
  switch (req.repl_op) {
    case ServeRequest::ReplOp::kState: {
      auto manifest = source.Manifest();
      if (!manifest.ok()) {
        return "err " + manifest.status().ToString() + "\n";
      }
      const ReplManifest& m = manifest.value();
      std::string out = StrFormat(
          "ok replstate epoch %llu wal_bytes %llu wal_has %d wal_first "
          "%llu files %zu\n",
          static_cast<unsigned long long>(m.epoch),
          static_cast<unsigned long long>(m.wal_bytes),
          m.wal_has_records ? 1 : 0,
          static_cast<unsigned long long>(m.wal_first_epoch),
          m.files.size());
      for (const ReplFileInfo& f : m.files) {
        out += StrFormat("file %s %llu\n", f.name.c_str(),
                         static_cast<unsigned long long>(f.bytes));
      }
      return out;
    }
    case ServeRequest::ReplOp::kFetch: {
      const uint64_t len = std::min(req.repl_len, kMaxReplChunkBytes);
      auto chunk = source.Fetch(req.repl_name, req.repl_offset, len);
      if (!chunk.ok()) return "err " + chunk.status().ToString() + "\n";
      if (chunk.value().empty()) return "ok replchunk 0\n";
      return StrFormat("ok replchunk %zu ", chunk.value().size()) +
             HexEncode(chunk.value()) + "\n";
    }
    case ServeRequest::ReplOp::kCrc: {
      auto crc = source.PrefixCrc(req.repl_name, req.repl_len);
      if (!crc.ok()) return "err " + crc.status().ToString() + "\n";
      return StrFormat("ok replcrc %08x\n", crc.value());
    }
  }
  return "err unreachable\n";
}

obs::Counter* ParseErrorCounter() {
  static obs::Counter* counter = obs::Metrics().GetCounter(
      "gvex_request_errors_total",
      "Requests answered with an err line, per verb (verb=\"parse\" counts "
      "requests that never parsed)",
      "verb", "parse");
  return counter;
}

}  // namespace

int ServeRequestShape(const std::vector<std::string>& head,
                      std::string* terminator) {
  terminator->clear();
  if (head.empty()) return 0;
  const std::string& keyword = head[0];
  if (keyword == "graphs" || keyword == "dbgraphs" ||
      keyword == "labelsof" || keyword == "mcs") {
    *terminator = "end";
    return 1;
  }
  if (keyword == "graphsall") {
    // graphsall <label> <k>: k pattern blocks. A malformed count reads no
    // blocks; the parser reports the error.
    *terminator = "end";
    int k = 0;
    if (head.size() >= 3 && ParseInt(head[2], &k) && k > 0) return k;
    return 0;
  }
  if (keyword == "admit") {
    *terminator = "endview";
    return 1;
  }
  return 0;
}

Result<ServeRequest> ParseServeRequest(const std::vector<std::string>& lines,
                                       size_t* pos) {
  while (*pos < lines.size() && Trim(lines[*pos]).empty()) ++*pos;
  if (*pos >= lines.size()) return Status::NotFound("end of input");
  const std::vector<std::string> head = SplitWhitespace(Trim(lines[*pos]));
  ++*pos;
  ServeRequest req;
  const std::string& kw = head[0];
  if (kw == "labels") {
    req.kind = ServeRequest::Kind::kLabels;
    return req;
  }
  if (kw == "stats") {
    req.kind = ServeRequest::Kind::kStats;
    return req;
  }
  if (kw == "metrics") {
    req.kind = ServeRequest::Kind::kMetrics;
    return req;
  }
  if (kw == "traces") {
    req.kind = ServeRequest::Kind::kTraces;
    return req;
  }
  if (kw == "health") {
    req.kind = ServeRequest::Kind::kHealth;
    return req;
  }
  if (kw == "events") {
    req.kind = ServeRequest::Kind::kEvents;
    return req;
  }
  if (kw == "trace") {
    if (head.size() < 2 || (head[1] != "on" && head[1] != "off")) {
      return Status::InvalidArgument("'trace' needs on or off");
    }
    req.kind = ServeRequest::Kind::kTrace;
    req.trace_on = head[1] == "on";
    if (!req.trace_on && head.size() > 2) {
      return Status::InvalidArgument("'trace off' takes no arguments");
    }
    if (req.trace_on) {
      if (head.size() > 3) {
        return Status::InvalidArgument(
            "'trace on' takes at most one sample period");
      }
      if (head.size() == 3) {
        int n = 0;
        if (!ParseInt(head[2], &n) || n < 1) {
          return Status::InvalidArgument("bad trace sample period '" +
                                         head[2] + "'");
        }
        req.trace_sample = n;
      }
    }
    return req;
  }
  if (kw == "save") {
    req.kind = ServeRequest::Kind::kSave;
    if (head.size() > 2) {
      // "save --delta --full" must not silently win by first flag.
      return Status::InvalidArgument(
          "'save' takes at most one flag (--delta or --full)");
    }
    if (head.size() == 2) {
      if (head[1] == "--delta") {
        req.save_kind = SaveKind::kDelta;
      } else if (head[1] == "--full") {
        req.save_kind = SaveKind::kFull;
      } else {
        return Status::InvalidArgument("bad save flag '" + head[1] +
                                       "' (use --delta or --full)");
      }
    }
    return req;
  }
  if (kw == "compact") {
    req.kind = ServeRequest::Kind::kCompact;
    return req;
  }
  if (kw == "open") {
    if (head.size() < 2) {
      return Status::InvalidArgument("'open' needs a store directory");
    }
    req.kind = ServeRequest::Kind::kOpen;
    req.dir = head[1];
    return req;
  }
  if (kw == "replicate") {
    req.kind = ServeRequest::Kind::kReplicate;
    if (head.size() < 2) {
      return Status::InvalidArgument(
          "'replicate' needs an op: state, fetch, or crc");
    }
    if (head[1] == "state") {
      if (head.size() > 2) {
        return Status::InvalidArgument("'replicate state' takes no arguments");
      }
      req.repl_op = ServeRequest::ReplOp::kState;
      return req;
    }
    if (head[1] == "fetch") {
      if (head.size() != 5 || !ParseUint64(head[3], &req.repl_offset) ||
          !ParseUint64(head[4], &req.repl_len)) {
        return Status::InvalidArgument(
            "usage: replicate fetch <file> <offset> <maxlen>");
      }
      req.repl_op = ServeRequest::ReplOp::kFetch;
      req.repl_name = head[2];
      return req;
    }
    if (head[1] == "crc") {
      if (head.size() != 4 || !ParseUint64(head[3], &req.repl_len)) {
        return Status::InvalidArgument("usage: replicate crc <file> <bytes>");
      }
      req.repl_op = ServeRequest::ReplOp::kCrc;
      req.repl_name = head[2];
      return req;
    }
    return Status::InvalidArgument("unknown replicate op '" + head[1] +
                                   "' (use state, fetch, or crc)");
  }
  if (kw == "promote") {
    req.kind = ServeRequest::Kind::kPromote;
    return req;
  }
  if (kw == "quit") {
    req.kind = ServeRequest::Kind::kQuit;
    return req;
  }
  if (kw == "patterns" || kw == "discriminative") {
    auto label = ParseLabelArg(head);
    if (!label.ok()) return label.status();
    req.kind = kw == "patterns" ? ServeRequest::Kind::kPatterns
                                : ServeRequest::Kind::kDiscriminative;
    req.label = label.value();
    return req;
  }
  if (kw == "graphs" || kw == "dbgraphs") {
    // Consume the payload block BEFORE reporting a bad label, so a
    // malformed request never desynchronizes the stream (the block's graph
    // lines must not be re-parsed as requests).
    auto label = ParseLabelArg(head);
    auto pattern = ParsePatternBlock(lines, pos);
    if (!label.ok()) return label.status();
    if (!pattern.ok()) return pattern.status();
    req.kind = kw == "graphs" ? ServeRequest::Kind::kGraphs
                              : ServeRequest::Kind::kDbGraphs;
    req.label = label.value();
    req.pattern = std::move(pattern).value();
    return req;
  }
  if (kw == "graphsall") {
    // Head: graphsall <label> <k>, then k pattern blocks. Consume every
    // block before reporting argument errors (stream stays in sync).
    auto label = ParseLabelArg(head);
    int count = -1;
    if (head.size() >= 3) {
      int k = -1;
      if (ParseInt(head[2], &k) && k >= 0) count = k;
    }
    Status first_error = Status::OK();
    for (int i = 0; i < std::max(0, count); ++i) {
      auto pattern = ParsePatternBlock(lines, pos);
      if (!pattern.ok()) {
        // An unterminated block consumed the rest of the input; stop.
        if (first_error.ok()) first_error = pattern.status();
        break;
      }
      req.patterns.push_back(std::move(pattern).value());
    }
    if (!label.ok()) return label.status();
    if (count < 0) {
      return Status::InvalidArgument(
          "'graphsall' needs a pattern count: graphsall <label> <k>");
    }
    if (!first_error.ok()) return first_error;
    req.kind = ServeRequest::Kind::kGraphsAll;
    req.label = label.value();
    return req;
  }
  if (kw == "mcs") {
    auto label = ParseLabelArg(head);
    auto block = CollectBlock(lines, pos, "end");
    if (!label.ok()) return label.status();
    if (!block.ok()) return block.status();
    auto graphs = ParseGraphs(block.value());
    if (!graphs.ok()) return graphs.status();
    if (graphs.value().size() != 1) {
      return Status::InvalidArgument("expected exactly one query graph");
    }
    if (graphs.value()[0].graph.num_nodes() == 0) {
      return Status::InvalidArgument("mcs query graph must be non-empty");
    }
    req.kind = ServeRequest::Kind::kMcs;
    req.label = label.value();
    req.query_graph = std::move(graphs.value()[0].graph);
    return req;
  }
  if (kw == "labelsof") {
    auto pattern = ParsePatternBlock(lines, pos);
    if (!pattern.ok()) return pattern.status();
    req.kind = ServeRequest::Kind::kLabelsOf;
    req.pattern = std::move(pattern).value();
    return req;
  }
  if (kw == "admit") {
    auto block = CollectBlock(lines, pos, "endview");
    if (!block.ok()) return block.status();
    auto views = ParseViews(block.value());
    if (!views.ok()) return views.status();
    if (views.value().size() != 1) {
      return Status::InvalidArgument("expected exactly one view to admit");
    }
    req.kind = ServeRequest::Kind::kAdmit;
    req.view = std::move(views.value()[0]);
    return req;
  }
  return Status::InvalidArgument("unknown request '" + kw + "'");
}

std::string HandleServeRequest(ServeSession* session,
                               const ServeRequest& req) {
  if (req.kind == ServeRequest::Kind::kPromote) {
    if (session->promote) {
      auto epoch = session->promote();
      if (!epoch.ok()) return "err " + epoch.status().ToString() + "\n";
      return StrFormat("ok promoted epoch %llu\n",
                       static_cast<unsigned long long>(epoch.value()));
    }
    // No applier hook: fall through to the bare-service promotion below.
  }
  if (req.kind == ServeRequest::Kind::kStats && session->service != nullptr &&
      session->lag_probe) {
    std::string response = HandleServeRequest(session->service, req);
    if (StartsWith(response, "ok ") && !response.empty()) {
      const ReplicationLag lag = session->lag_probe();
      response.pop_back();  // the trailing newline
      response += StrFormat(" lag_epochs %llu lag_bytes %llu\n",
                            static_cast<unsigned long long>(lag.epochs),
                            static_cast<unsigned long long>(lag.bytes));
    }
    return response;
  }
  if (req.kind == ServeRequest::Kind::kOpen) {
    // On a replica host, `open` would swap the session off the replica and
    // onto a WRITABLE service over some directory — a mutation path, so it
    // gets the same refusal as admit/save/compact until promotion.
    if (session->service != nullptr && session->service->read_only()) {
      return RefuseReadOnly();
    }
    // Re-opening the directory this session already serves is a reload:
    // release our own store lock first, or Open would see it held and
    // blame "another process". If the reload then fails, the session is
    // left serviceless (accurate — the old state is gone).
    if (session->owned != nullptr && session->owned->store_dir() == req.dir) {
      if (session->service == session->owned.get()) {
        session->service = nullptr;
      }
      session->owned.reset();
    }
    auto opened = ViewService::Open(req.dir, session->db, session->options);
    if (!opened.ok()) return "err " + opened.status().ToString() + "\n";
    session->owned = std::move(opened).value();
    session->service = session->owned.get();
    return StrFormat("ok open %s epoch %llu labels %zu\n", req.dir.c_str(),
                     static_cast<unsigned long long>(
                         session->service->epoch()),
                     session->service->Labels().size());
  }
  // The observability verbs work without a service (`metrics` then renders
  // only the registry families), so a fresh session can be scraped before
  // its first `open`.
  if (req.kind == ServeRequest::Kind::kMetrics ||
      req.kind == ServeRequest::Kind::kTrace ||
      req.kind == ServeRequest::Kind::kTraces ||
      req.kind == ServeRequest::Kind::kHealth ||
      req.kind == ServeRequest::Kind::kEvents) {
    return HandleObservabilityRequest(session->service, req);
  }
  // A session may legitimately start with no service and issue `open`
  // first; every other verb except `quit` needs one.
  if (session->service == nullptr) {
    if (req.kind == ServeRequest::Kind::kQuit) return "ok bye\n";
    return "err no service open (use 'open <dir>')\n";
  }
  return HandleServeRequest(session->service, req);
}

std::string HandleServeRequest(ViewService* service,
                               const ServeRequest& req) {
  // Replica refusal, checked PER REQUEST (not at connect time): Promote()
  // flips read_only on the live service, so the same session that was
  // refused a moment ago starts admitting the moment promotion lands.
  if (service->read_only() && (req.kind == ServeRequest::Kind::kAdmit ||
                               req.kind == ServeRequest::Kind::kSave ||
                               req.kind == ServeRequest::Kind::kCompact)) {
    return RefuseReadOnly();
  }
  switch (req.kind) {
    case ServeRequest::Kind::kLabels:
      return FormatIds(service->Labels());
    case ServeRequest::Kind::kPatterns:
      return FormatPatterns(service->PatternsForLabel(req.label));
    case ServeRequest::Kind::kGraphs:
      return FormatIds(service->GraphsWithPattern(req.label, req.pattern));
    case ServeRequest::Kind::kLabelsOf:
      return FormatIds(service->LabelsOfPattern(req.pattern));
    case ServeRequest::Kind::kDbGraphs:
      return FormatIds(
          service->DatabaseGraphsWithPattern(req.pattern, req.label));
    case ServeRequest::Kind::kDiscriminative:
      return FormatPatterns(service->DiscriminativePatterns(req.label));
    case ServeRequest::Kind::kGraphsAll:
      return FormatIds(
          service->GraphsWithAllPatterns(req.label, req.patterns));
    case ServeRequest::Kind::kMcs: {
      const McsAnswer a =
          service->MaxCommonSubgraph(req.label, req.query_graph);
      return StrFormat("ok mcs graph %d size %d exact %d\n", a.graph_index,
                       a.size, a.exact ? 1 : 0);
    }
    case ServeRequest::Kind::kAdmit: {
      const int label = req.view.label;
      auto epoch = service->AdmitView(req.view);
      if (!epoch.ok()) return "err " + epoch.status().ToString() + "\n";
      // The epoch THIS admission published — under concurrent sessions
      // service->epoch() may already belong to someone else's admission.
      return StrFormat("ok admitted %d epoch %llu\n", label,
                       static_cast<unsigned long long>(epoch.value()));
    }
    case ServeRequest::Kind::kStats: {
      const ViewServiceStats s = service->stats();
      // `role` rides at the END of the line (prefix-matching clients keep
      // working); the session overload appends replication lag after it.
      return StrFormat(
          "ok stats epoch %llu labels %d codes %d admitted %llu "
          "batches %llu cache_hits %llu cache_misses %llu hit_rate %.4f "
          "uptime_sec %.1f started_unix %lld role %s\n",
          static_cast<unsigned long long>(s.epoch), s.num_labels,
          s.num_codes, static_cast<unsigned long long>(s.admitted_views),
          static_cast<unsigned long long>(s.admitted_batches),
          static_cast<unsigned long long>(s.cache_hits),
          static_cast<unsigned long long>(s.cache_misses), s.hit_rate(),
          obs::ProcessUptimeSeconds(),
          static_cast<long long>(obs::ProcessStartUnixSeconds()),
          service->read_only() ? "replica" : "primary");
    }
    case ServeRequest::Kind::kMetrics:
    case ServeRequest::Kind::kTrace:
    case ServeRequest::Kind::kTraces:
    case ServeRequest::Kind::kHealth:
    case ServeRequest::Kind::kEvents:
      return HandleObservabilityRequest(service, req);
    case ServeRequest::Kind::kSave: {
      auto saved = service->Save(req.save_kind);
      if (!saved.ok()) return "err " + saved.status().ToString() + "\n";
      const SaveInfo& info = saved.value();
      return StrFormat("ok saved epoch %llu %s\n",
                       static_cast<unsigned long long>(info.epoch),
                       !info.wrote ? "noop" : info.delta ? "delta" : "full");
    }
    case ServeRequest::Kind::kCompact: {
      auto epoch = service->Compact();
      if (!epoch.ok()) return "err " + epoch.status().ToString() + "\n";
      return StrFormat("ok compacted epoch %llu\n",
                       static_cast<unsigned long long>(epoch.value()));
    }
    case ServeRequest::Kind::kReplicate:
      return HandleReplicateRequest(service, req);
    case ServeRequest::Kind::kPromote: {
      if (!service->read_only()) {
        return "err not a replica (already primary)\n";
      }
      // Direct service promotion: only valid when nothing else owns the
      // store LOCK. Hosts running a replica applier install a session
      // promote hook instead (the applier must release the LOCK first).
      Status st = service->Promote();
      if (!st.ok()) return "err " + st.ToString() + "\n";
      return StrFormat("ok promoted epoch %llu\n",
                       static_cast<unsigned long long>(service->epoch()));
    }
    case ServeRequest::Kind::kOpen:
      // `open` swaps which service a session talks to — only the session
      // overload can honor it.
      return "err open requires a protocol session (ServeSession)\n";
    case ServeRequest::Kind::kQuit:
      return "ok bye\n";
  }
  return "err unreachable\n";
}

const char* ServeVerbName(ServeRequest::Kind kind) {
  switch (kind) {
    case ServeRequest::Kind::kLabels:
      return "labels";
    case ServeRequest::Kind::kPatterns:
      return "patterns";
    case ServeRequest::Kind::kGraphs:
      return "graphs";
    case ServeRequest::Kind::kLabelsOf:
      return "labelsof";
    case ServeRequest::Kind::kDbGraphs:
      return "dbgraphs";
    case ServeRequest::Kind::kDiscriminative:
      return "discriminative";
    case ServeRequest::Kind::kGraphsAll:
      return "graphsall";
    case ServeRequest::Kind::kMcs:
      return "mcs";
    case ServeRequest::Kind::kAdmit:
      return "admit";
    case ServeRequest::Kind::kStats:
      return "stats";
    case ServeRequest::Kind::kMetrics:
      return "metrics";
    case ServeRequest::Kind::kTrace:
      return "trace";
    case ServeRequest::Kind::kTraces:
      return "traces";
    case ServeRequest::Kind::kHealth:
      return "health";
    case ServeRequest::Kind::kEvents:
      return "events";
    case ServeRequest::Kind::kOpen:
      return "open";
    case ServeRequest::Kind::kSave:
      return "save";
    case ServeRequest::Kind::kCompact:
      return "compact";
    case ServeRequest::Kind::kReplicate:
      return "replicate";
    case ServeRequest::Kind::kPromote:
      return "promote";
    case ServeRequest::Kind::kQuit:
      return "quit";
  }
  return "unknown";
}

std::string RenderMetricsText(const ViewService* service) {
  // Refresh the health gauges first so every export carries a current
  // `gvex_health_status` (scrapers get health + metrics in one pass; the
  // evaluation itself is a handful of atomic reads / try-locks).
  obs::Health().Evaluate();
  std::string out = obs::Metrics().RenderPrometheus();
  const auto emit = [&out](const char* name, const char* type,
                           const char* help, double v) {
    out += StrFormat("# HELP %s %s\n# TYPE %s %s\n%s %.10g\n", name, help,
                     name, type, name, v);
  };
  if (service != nullptr) {
    // The service section reads ONE consistent stats() snapshot at scrape
    // time instead of double-counting into the registry on the hot path.
    const ViewServiceStats s = service->stats();
    emit("gvex_service_epoch", "gauge", "Published snapshot epoch",
         static_cast<double>(s.epoch));
    emit("gvex_service_labels", "gauge", "Labels in the current snapshot",
         s.num_labels);
    emit("gvex_service_codes", "gauge",
         "Indexed canonical codes in the current snapshot", s.num_codes);
    emit("gvex_service_admitted_views_total", "counter",
         "Views admitted since this service was constructed",
         static_cast<double>(s.admitted_views));
    emit("gvex_service_admitted_batches_total", "counter",
         "Admission batches folded into published snapshots",
         static_cast<double>(s.admitted_batches));
    emit("gvex_service_cache_hits_total", "counter", "Result cache hits",
         static_cast<double>(s.cache_hits));
    emit("gvex_service_cache_misses_total", "counter", "Result cache misses",
         static_cast<double>(s.cache_misses));
    emit("gvex_service_index_fallback_scans_total", "counter",
         "Index lookups that fell back to a full scan",
         static_cast<double>(s.index_fallback_scans));
    emit("gvex_service_index_inconsistent_postings_total", "counter",
         "Index postings found inconsistent and re-verified",
         static_cast<double>(s.index_inconsistent_postings));
    emit("gvex_service_index_filtered_rejects_total", "counter",
         "Index candidates rejected by the verification filter",
         static_cast<double>(s.index_filtered_rejects));
    emit("gvex_service_compactions_total", "counter",
         "Compactions completed successfully",
         static_cast<double>(s.compactions));
    emit("gvex_service_compaction_failures_total", "counter",
         "Compactions that failed (see the rate-limited warning log)",
         static_cast<double>(s.compaction_failures));
    emit("gvex_service_replica", "gauge",
         "1 when this service is a read-only replica, 0 once primary",
         service->read_only() ? 1.0 : 0.0);
  }
  emit("gvex_process_uptime_seconds", "gauge",
       "Seconds since process start (anchors the process-lifetime counters)",
       obs::ProcessUptimeSeconds());
  emit("gvex_process_start_time_seconds", "gauge",
       "Process start as unix epoch seconds",
       static_cast<double>(obs::ProcessStartUnixSeconds()));
  return out;
}

std::string ServeText(ServeSession* session, const std::string& text,
                      bool* quit) {
  if (quit) *quit = false;
  std::string out;
  const std::vector<std::string> lines = Split(text, '\n');
  size_t pos = 0;
  while (true) {
    auto req = ParseServeRequest(lines, &pos);
    if (!req.ok()) {
      if (req.status().code() == StatusCode::kNotFound) break;
      out += "err " + req.status().message() + "\n";
      ParseErrorCounter()->Add(1);
      continue;
    }
    const ServeRequest::Kind kind = req.value().kind;
    const auto start = std::chrono::steady_clock::now();
    const std::string response = HandleServeRequest(session, req.value());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const VerbInstruments& vi = InstrumentsFor(kind);
    vi.latency->ObserveSeconds(seconds);
    vi.total->Add(1);
    if (StartsWith(response, "err")) vi.errors->Add(1);
    obs::MaybeLogSlowRequest(ServeVerbName(kind), seconds * 1e3);
    out += response;
    if (kind == ServeRequest::Kind::kQuit) {
      if (quit) *quit = true;
      break;
    }
  }
  return out;
}

std::string ServeText(ViewService* service, const std::string& text,
                      bool* quit) {
  ServeSession session;
  session.service = service;
  return ServeText(&session, text, quit);
}

}  // namespace gvex
