// ViewService: the concurrent, indexed view-serving front end. Wraps a
// PatternIndex in an epoch/RCU-style snapshot so explanation views can be
// admitted live (e.g. published mid-stream from StreamGvex) without ever
// blocking readers, adds a sharded LRU result cache, and executes query
// batches across the shared ThreadPool.
//
// Snapshot discipline: the service holds one `shared_ptr<const Snapshot>`
// (views + index + epoch). Readers atomically load the pointer once per
// query — or once per BATCH, so a batch sees a single consistent epoch —
// and keep the snapshot alive for the duration via shared ownership.
// Writers (AdmitView) serialize on a writer mutex, build the NEXT snapshot
// entirely off to the side (including the index rebuild, the expensive
// part), then atomically publish it. A reader therefore observes either
// the previous complete epoch or the new complete epoch, never a torn
// intermediate state; old epochs are reclaimed when their last reader
// drops the shared_ptr (that is the RCU grace period).
//
// Result cache: an LRU keyed by (epoch, query kind, label, canonical
// code), striped into `cache_shards` independently locked shards to keep
// reader contention low. Epochs in the key make invalidation free —
// entries from superseded epochs simply age out.
//
// Thread-safety: ALL public methods are safe to call concurrently from any
// number of threads, including AdmitView racing queries. AdmitView calls
// are serialized internally (admissions are ordered); queries never block
// on admissions and vice versa.
//
// Durability (src/store/): a service constructed via Open(dir) is DURABLE.
// Every admission is appended to a write-ahead log (store/wal.h) before its
// snapshot is published; Save() writes the whole current epoch as an
// epoch-tagged binary snapshot (store/snapshot.h, including the index
// postings, so reopening decodes the index instead of re-running the
// isomorphism cross-product); Compact() folds the WAL into a fresh
// snapshot. Open(dir) warm-starts from the newest valid snapshot plus WAL
// replay and tolerates torn WAL tails — see the kill-and-restart parity
// test in tests/serve/view_service_recovery_test.cpp.

#ifndef GVEX_SERVE_VIEW_SERVICE_H_
#define GVEX_SERVE_VIEW_SERVICE_H_

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include <thread>

#include "explain/explanation.h"
#include "graph/graph_database.h"
#include "pattern/pattern.h"
#include "serve/pattern_index.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace gvex {

/// Durability knobs (only consulted by services created via Open).
struct DurableStoreOptions {
  /// fsync the WAL every N admissions (1 = every admission; larger values
  /// batch fsyncs — a power failure may lose up to N-1 tail admissions, a
  /// process crash loses nothing that was admitted).
  int wal_sync_every = 1;
  /// When > 0, an admission that grows the WAL past this many bytes
  /// triggers a BACKGROUND Compact() (non-overlapping; readers and writers
  /// keep going — compaction only takes the writer lock for the duration
  /// of the snapshot write). 0 disables automatic compaction.
  uint64_t compact_wal_bytes = 0;
  /// Compact() removes snapshot files older than the one it just wrote.
  bool prune_snapshots = true;
};

/// Service behavior knobs.
struct ViewServiceOptions {
  /// Index build options applied on every admission (match semantics,
  /// database indexing, build workers).
  PatternIndex::BuildOptions index;
  /// LRU entries per cache shard (0 disables the result cache).
  size_t cache_capacity = 256;
  /// Independently locked cache stripes.
  int cache_shards = 8;
  /// Workers of a PERSISTENT batch-execution pool created at construction.
  /// 0 (default) spins up a transient pool per ExecuteBatch call instead —
  /// fine for occasional large batches, wasteful for many small ones.
  /// Answers are identical either way. Note: the pool's completion barrier
  /// is pool-global, so concurrent ExecuteBatch callers sharing the
  /// persistent pool may wait out each other's shards (throughput
  /// coupling, not a correctness issue).
  int batch_workers = 0;
  /// Durability knobs for Open-created services.
  DurableStoreOptions store;
};

/// The query kinds the service answers (mirrors the legacy ViewStore API).
enum class QueryKind {
  kLabels,                    // no arguments
  kPatternsForLabel,          // label
  kGraphsWithPattern,         // label + pattern
  kLabelsOfPattern,           // pattern
  kDatabaseGraphsWithPattern, // pattern + optional label (-1 = all)
  kDiscriminativePatterns,    // label
};

/// One query of a batch.
struct ViewQuery {
  QueryKind kind = QueryKind::kLabels;
  int label = -1;
  /// Meaningful only for the pattern-valued kinds.
  Pattern pattern;
};

/// One query's answer. Exactly one of `ids` / `patterns` is populated,
/// matching the kind; `epoch` is the snapshot the answer was computed on.
struct ViewQueryResult {
  std::vector<int> ids;
  std::vector<Pattern> patterns;
  uint64_t epoch = 0;
};

/// Cache counters (monotonic since construction).
struct ViewServiceStats {
  uint64_t epoch = 0;      ///< Admissions published so far.
  int num_labels = 0;      ///< Labels in the current snapshot.
  int num_codes = 0;       ///< Indexed canonical codes in the snapshot.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Last Compact() failure ("" when compaction never failed or succeeded
  /// since) — the only visible signal when BACKGROUND compaction fails.
  std::string last_compact_error;

  /// hits / (hits + misses); 0 when the cache has seen no lookups.
  double hit_rate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

/// Concurrent, snapshot-swapped, cached front end over a PatternIndex.
class ViewService {
 public:
  /// `db` may be null (no database queries) and must outlive the service.
  explicit ViewService(const GraphDatabase* db,
                       ViewServiceOptions options = {});
  /// Joins any in-flight background compaction.
  ~ViewService();

  ViewService(const ViewService&) = delete;
  ViewService& operator=(const ViewService&) = delete;

  // --- Durable storage (src/store/) ---

  /// Opens (or creates) a DURABLE service rooted at directory `dir`:
  /// warm-starts from the newest snapshot that validates (decoding the
  /// index postings — no isomorphism rebuild), replays WAL admissions
  /// newer than it (one index rebuild when any exist), truncates a torn
  /// WAL tail, and attaches the WAL so every subsequent admission is
  /// logged before it publishes. An empty directory opens as an empty
  /// epoch-0 service. `db` must be the database the stored views explain
  /// (null for services without database queries).
  static Result<std::unique_ptr<ViewService>> Open(
      const std::string& dir, const GraphDatabase* db,
      ViewServiceOptions options = {});

  /// True when this service was created by Open (Save/Compact available).
  bool durable() const { return store_ != nullptr; }
  /// The store directory ("" when not durable).
  const std::string& store_dir() const;

  /// Writes the current epoch as `snapshot-<epoch>.gvxs` in the store
  /// directory (atomic tmp+rename; the WAL is kept, so admissions racing
  /// the save stay recoverable). Returns the epoch saved.
  /// FailedPrecondition when the service is not durable.
  Result<uint64_t> Save();

  /// Save() + reset the WAL (every logged admission is now covered by the
  /// snapshot) + prune older snapshot files (when enabled). Returns the
  /// epoch compacted into. Safe to call concurrently with admissions and
  /// queries.
  Result<uint64_t> Compact();

  /// Publishes `view` (replacing any previous view for its label) as a new
  /// epoch. The index rebuild happens off to the side; readers keep
  /// serving the previous epoch until the atomic pointer swap. Returns the
  /// epoch THIS admission published (under concurrent admitters, epoch()
  /// may already be past it by the time the caller looks).
  Result<uint64_t> AdmitView(ExplanationView view);

  /// Publishes several views as ONE new epoch (one index rebuild).
  Result<uint64_t> AdmitViews(std::vector<ExplanationView> views);

  // --- Single queries (each runs on one atomically loaded snapshot and is
  // bit-identical to the legacy ViewStore scan; see the oracle test). ---
  std::vector<int> Labels() const;
  std::vector<Pattern> PatternsForLabel(int label) const;
  std::vector<int> GraphsWithPattern(int label, const Pattern& p) const;
  std::vector<int> LabelsOfPattern(const Pattern& p) const;
  std::vector<int> DatabaseGraphsWithPattern(const Pattern& p,
                                             int label = -1) const;
  std::vector<Pattern> DiscriminativePatterns(int label) const;

  /// Executes a batch across workers: the persistent pool when
  /// `batch_workers` > 0 (num_threads is then ignored), else a transient
  /// pool of `num_threads`. The whole batch runs against ONE snapshot, so
  /// every result carries the same epoch; results land in request order
  /// regardless of worker count.
  std::vector<ViewQueryResult> ExecuteBatch(
      const std::vector<ViewQuery>& queries, int num_threads = 1) const;

  /// Epoch of the currently published snapshot (0 = empty initial epoch).
  uint64_t epoch() const;

  ViewServiceStats stats() const;

 private:
  struct Snapshot {
    uint64_t epoch = 0;
    std::shared_ptr<const std::map<int, ExplanationView>> views;
    PatternIndex index;
  };

  /// One LRU stripe: list front = most recent; map values point into it.
  struct CacheShard {
    struct Entry {
      std::string key;
      ViewQueryResult result;
    };
    mutable std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Durable-store state, present only for Open-created services. The WAL
  /// writer is guarded by writer_mu_ (appends happen inside admissions).
  /// The compactor HANDLE is guarded by compact_mu (the worker may clear
  /// `compacting` before the scheduler's move-assignment into `compactor`
  /// completes, so flag-only coordination would race on the handle).
  struct DurableStore {
    ~DurableStore() {
      if (lock_fd >= 0) ::close(lock_fd);  // releases the flock
    }
    std::string dir;
    /// Held (flock LOCK_EX) for the service's lifetime — one writer per
    /// store directory; -1 until Open acquires it.
    int lock_fd = -1;
    WalWriter wal;
    /// Set when a Compact saved its snapshot but could not reset the WAL;
    /// every logged record is covered by that snapshot, so the next
    /// admission retries the reset instead of staying wedged.
    std::atomic<bool> wal_needs_reset{false};
    std::atomic<bool> compacting{false};
    std::mutex compact_mu;
    std::thread compactor;
    /// Last Compact() outcome ("" = success), for stats()/operators —
    /// background compaction has no caller to return its status to.
    std::mutex status_mu;
    std::string last_compact_error;
  };

  std::shared_ptr<const Snapshot> Load() const;
  void Publish(std::shared_ptr<const Snapshot> snap);
  ViewQueryResult Execute(const Snapshot& snap, const ViewQuery& q) const;
  /// Cache-through execution: looks up (epoch, query) and fills on miss.
  ViewQueryResult ExecuteCached(const Snapshot& snap,
                                const ViewQuery& q) const;
  /// Snapshot write for `snap`; requires writer_mu_ held and durable().
  Status SaveLocked(const Snapshot& snap);
  /// Kicks off a background Compact when the WAL outgrew its threshold
  /// (`wal_bytes` is read under the writer lock by the caller).
  void MaybeScheduleCompact(uint64_t wal_bytes);

  const GraphDatabase* db_;
  ViewServiceOptions options_;

  /// Current snapshot; accessed with std::atomic_load / std::atomic_store.
  std::shared_ptr<const Snapshot> snapshot_;
  /// Serializes writers (admissions, snapshot writes, WAL appends).
  std::mutex writer_mu_;

  mutable std::vector<std::unique_ptr<CacheShard>> cache_;
  /// Persistent batch pool (null when options_.batch_workers == 0).
  std::unique_ptr<ThreadPool> batch_pool_;
  /// Null for purely in-memory services.
  std::unique_ptr<DurableStore> store_;
};

}  // namespace gvex

#endif  // GVEX_SERVE_VIEW_SERVICE_H_
