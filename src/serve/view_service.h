// ViewService: the concurrent, indexed view-serving front end. Wraps a
// PatternIndex in an epoch/RCU-style snapshot so explanation views can be
// admitted live (e.g. published mid-stream from StreamGvex) without ever
// blocking readers, adds a sharded LRU result cache, and executes query
// batches across the shared ThreadPool.
//
// Snapshot discipline: the service holds one `shared_ptr<const Snapshot>`
// (views + index + epoch). Readers atomically load the pointer once per
// query — or once per BATCH, so a batch sees a single consistent epoch —
// and keep the snapshot alive for the duration via shared ownership.
// Writers (AdmitView) serialize on a writer mutex, build the NEXT snapshot
// entirely off to the side (including the index rebuild, the expensive
// part), then atomically publish it. A reader therefore observes either
// the previous complete epoch or the new complete epoch, never a torn
// intermediate state; old epochs are reclaimed when their last reader
// drops the shared_ptr (that is the RCU grace period).
//
// Result cache: an LRU keyed by (epoch, query kind, label, canonical
// code), striped into `cache_shards` independently locked shards to keep
// reader contention low. Epochs in the key make invalidation free —
// entries from superseded epochs simply age out.
//
// Thread-safety: ALL public methods are safe to call concurrently from any
// number of threads, including AdmitView racing queries. AdmitView calls
// are serialized internally (admissions are ordered); queries never block
// on admissions and vice versa.

#ifndef GVEX_SERVE_VIEW_SERVICE_H_
#define GVEX_SERVE_VIEW_SERVICE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "explain/explanation.h"
#include "graph/graph_database.h"
#include "pattern/pattern.h"
#include "serve/pattern_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace gvex {

/// Service behavior knobs.
struct ViewServiceOptions {
  /// Index build options applied on every admission (match semantics,
  /// database indexing, build workers).
  PatternIndex::BuildOptions index;
  /// LRU entries per cache shard (0 disables the result cache).
  size_t cache_capacity = 256;
  /// Independently locked cache stripes.
  int cache_shards = 8;
  /// Workers of a PERSISTENT batch-execution pool created at construction.
  /// 0 (default) spins up a transient pool per ExecuteBatch call instead —
  /// fine for occasional large batches, wasteful for many small ones.
  /// Answers are identical either way. Note: the pool's completion barrier
  /// is pool-global, so concurrent ExecuteBatch callers sharing the
  /// persistent pool may wait out each other's shards (throughput
  /// coupling, not a correctness issue).
  int batch_workers = 0;
};

/// The query kinds the service answers (mirrors the legacy ViewStore API).
enum class QueryKind {
  kLabels,                    // no arguments
  kPatternsForLabel,          // label
  kGraphsWithPattern,         // label + pattern
  kLabelsOfPattern,           // pattern
  kDatabaseGraphsWithPattern, // pattern + optional label (-1 = all)
  kDiscriminativePatterns,    // label
};

/// One query of a batch.
struct ViewQuery {
  QueryKind kind = QueryKind::kLabels;
  int label = -1;
  /// Meaningful only for the pattern-valued kinds.
  Pattern pattern;
};

/// One query's answer. Exactly one of `ids` / `patterns` is populated,
/// matching the kind; `epoch` is the snapshot the answer was computed on.
struct ViewQueryResult {
  std::vector<int> ids;
  std::vector<Pattern> patterns;
  uint64_t epoch = 0;
};

/// Cache counters (monotonic since construction).
struct ViewServiceStats {
  uint64_t epoch = 0;      ///< Admissions published so far.
  int num_labels = 0;      ///< Labels in the current snapshot.
  int num_codes = 0;       ///< Indexed canonical codes in the snapshot.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// Concurrent, snapshot-swapped, cached front end over a PatternIndex.
class ViewService {
 public:
  /// `db` may be null (no database queries) and must outlive the service.
  explicit ViewService(const GraphDatabase* db,
                       ViewServiceOptions options = {});
  ~ViewService() = default;

  ViewService(const ViewService&) = delete;
  ViewService& operator=(const ViewService&) = delete;

  /// Publishes `view` (replacing any previous view for its label) as a new
  /// epoch. The index rebuild happens off to the side; readers keep
  /// serving the previous epoch until the atomic pointer swap. Returns the
  /// epoch THIS admission published (under concurrent admitters, epoch()
  /// may already be past it by the time the caller looks).
  Result<uint64_t> AdmitView(ExplanationView view);

  /// Publishes several views as ONE new epoch (one index rebuild).
  Result<uint64_t> AdmitViews(std::vector<ExplanationView> views);

  // --- Single queries (each runs on one atomically loaded snapshot and is
  // bit-identical to the legacy ViewStore scan; see the oracle test). ---
  std::vector<int> Labels() const;
  std::vector<Pattern> PatternsForLabel(int label) const;
  std::vector<int> GraphsWithPattern(int label, const Pattern& p) const;
  std::vector<int> LabelsOfPattern(const Pattern& p) const;
  std::vector<int> DatabaseGraphsWithPattern(const Pattern& p,
                                             int label = -1) const;
  std::vector<Pattern> DiscriminativePatterns(int label) const;

  /// Executes a batch across workers: the persistent pool when
  /// `batch_workers` > 0 (num_threads is then ignored), else a transient
  /// pool of `num_threads`. The whole batch runs against ONE snapshot, so
  /// every result carries the same epoch; results land in request order
  /// regardless of worker count.
  std::vector<ViewQueryResult> ExecuteBatch(
      const std::vector<ViewQuery>& queries, int num_threads = 1) const;

  /// Epoch of the currently published snapshot (0 = empty initial epoch).
  uint64_t epoch() const;

  ViewServiceStats stats() const;

 private:
  struct Snapshot {
    uint64_t epoch = 0;
    std::shared_ptr<const std::map<int, ExplanationView>> views;
    PatternIndex index;
  };

  /// One LRU stripe: list front = most recent; map values point into it.
  struct CacheShard {
    struct Entry {
      std::string key;
      ViewQueryResult result;
    };
    mutable std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  std::shared_ptr<const Snapshot> Load() const;
  void Publish(std::shared_ptr<const Snapshot> snap);
  ViewQueryResult Execute(const Snapshot& snap, const ViewQuery& q) const;
  /// Cache-through execution: looks up (epoch, query) and fills on miss.
  ViewQueryResult ExecuteCached(const Snapshot& snap,
                                const ViewQuery& q) const;

  const GraphDatabase* db_;
  ViewServiceOptions options_;

  /// Current snapshot; accessed with std::atomic_load / std::atomic_store.
  std::shared_ptr<const Snapshot> snapshot_;
  /// Serializes writers (admissions).
  std::mutex writer_mu_;

  mutable std::vector<std::unique_ptr<CacheShard>> cache_;
  /// Persistent batch pool (null when options_.batch_workers == 0).
  std::unique_ptr<ThreadPool> batch_pool_;
};

}  // namespace gvex

#endif  // GVEX_SERVE_VIEW_SERVICE_H_
