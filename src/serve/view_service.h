// ViewService: the concurrent, indexed view-serving front end. Wraps a
// PatternIndex in an epoch/RCU-style snapshot so explanation views can be
// admitted live (e.g. published mid-stream from StreamGvex) without ever
// blocking readers, adds a sharded LRU result cache, and executes query
// batches across the shared ThreadPool.
//
// Snapshot discipline: the service holds one `shared_ptr<const Snapshot>`
// (views + index + epoch). Readers atomically load the pointer once per
// query — or once per BATCH, so a batch sees a single consistent epoch —
// and keep the snapshot alive for the duration via shared ownership.
// Writers (AdmitView) serialize on a writer mutex, build the NEXT snapshot
// entirely off to the side (including the index rebuild, the expensive
// part), then atomically publish it. A reader therefore observes either
// the previous complete epoch or the new complete epoch, never a torn
// intermediate state; old epochs are reclaimed when their last reader
// drops the shared_ptr (that is the RCU grace period).
//
// Result cache: an LRU keyed by (epoch, query kind, label, canonical
// code), striped into `cache_shards` independently locked shards to keep
// reader contention low. Epochs in the key make invalidation free —
// entries from superseded epochs simply age out.
//
// Thread-safety: ALL public methods are safe to call concurrently from any
// number of threads, including AdmitView racing queries. AdmitView calls
// are serialized internally (admissions are ordered); queries never block
// on admissions and vice versa.
//
// Durability (src/store/): a service constructed via Open(dir) is DURABLE.
// Every admission batch is appended to a write-ahead log (store/wal.h)
// before its snapshot is published; Save() persists the current epoch
// either as a full epoch-tagged snapshot (store/snapshot.h, including the
// index postings, so reopening decodes the index instead of re-running the
// isomorphism cross-product) or as an incremental DELTA holding only the
// views changed since the last persisted image — a size policy picks
// (DurableStoreOptions), so big stores stop paying O(store) I/O per save.
// Compact() folds the WAL and any delta chain into a fresh full snapshot.
// Open(dir) warm-starts from the newest valid snapshot CHAIN (base +
// delta*, resolved by store/recovery.h) plus WAL replay and tolerates torn
// WAL tails — see tests/serve/view_service_recovery_test.cpp and the
// crash/interleaving harness in tests/store/chain_crash_test.cpp.

#ifndef GVEX_SERVE_VIEW_SERVICE_H_
#define GVEX_SERVE_VIEW_SERVICE_H_

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include <thread>

#include "explain/explanation.h"
#include "graph/graph_database.h"
#include "obs/health.h"
#include "pattern/matcher.h"
#include "pattern/pattern.h"
#include "serve/pattern_index.h"
#include "store/recovery.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace gvex {

/// Durability knobs (only consulted by services created via Open).
struct DurableStoreOptions {
  /// fsync the WAL every N admissions (1 = every admission; larger values
  /// batch fsyncs — a power failure may lose up to N-1 tail admissions, a
  /// process crash loses nothing that was admitted).
  int wal_sync_every = 1;
  /// When > 0, an admission that grows the WAL past this many bytes
  /// triggers a BACKGROUND Compact() (non-overlapping; readers and writers
  /// keep going — compaction only takes the writer lock for the duration
  /// of the snapshot write). 0 disables automatic compaction.
  uint64_t compact_wal_bytes = 0;
  /// Compact() removes snapshot files older than the one it just wrote.
  bool prune_snapshots = true;
  /// Size policy for Save(SaveKind::kAuto): prefer an incremental (delta)
  /// snapshot when a full base exists, the chain is shorter than
  /// `delta_max_chain`, and at most `delta_max_fraction` of the labels
  /// changed since the last persisted image. Otherwise write a full
  /// snapshot (which roots a fresh chain). 0 disables auto-deltas.
  int delta_max_chain = 8;
  /// Changed-labels / total-labels threshold for the auto policy.
  double delta_max_fraction = 0.5;
};

/// Service behavior knobs.
struct ViewServiceOptions {
  /// Index build options applied on every admission (match semantics,
  /// database indexing, build workers).
  PatternIndex::BuildOptions index;
  /// LRU entries per cache shard (0 disables the result cache).
  size_t cache_capacity = 256;
  /// Independently locked cache stripes.
  int cache_shards = 8;
  /// Workers of a PERSISTENT batch-execution pool created at construction.
  /// 0 (default) spins up a transient pool per ExecuteBatch call instead —
  /// fine for occasional large batches, wasteful for many small ones.
  /// Answers are identical either way. Note: the pool's completion barrier
  /// is pool-global, so concurrent ExecuteBatch callers sharing the
  /// persistent pool may wait out each other's shards (throughput
  /// coupling, not a correctness issue).
  int batch_workers = 0;
  /// Durability knobs for Open-created services.
  DurableStoreOptions store;
  /// The `admit_queue` health check reports FAIL when one combining-queue
  /// leader has been active longer than this (a wedged leader starves
  /// every admitter; see obs/health.h).
  double admit_wedge_warn_sec = 30.0;
  /// Test-only: run by the combining leader inside AdmitCombined (under
  /// the writer lock, before anything is logged or published). Lets tests
  /// wedge the admit path deterministically; never set in production.
  std::function<void()> admit_test_hook;
};

/// The query kinds the service answers (mirrors the legacy ViewStore API).
enum class QueryKind {
  kLabels,                    // no arguments
  kPatternsForLabel,          // label
  kGraphsWithPattern,         // label + pattern
  kLabelsOfPattern,           // pattern
  kDatabaseGraphsWithPattern, // pattern + optional label (-1 = all)
  kDiscriminativePatterns,    // label
};

/// One query of a batch.
struct ViewQuery {
  QueryKind kind = QueryKind::kLabels;
  int label = -1;
  /// Meaningful only for the pattern-valued kinds.
  Pattern pattern;
};

/// One query's answer. Exactly one of `ids` / `patterns` is populated,
/// matching the kind; `epoch` is the snapshot the answer was computed on.
struct ViewQueryResult {
  std::vector<int> ids;
  std::vector<Pattern> patterns;
  uint64_t epoch = 0;
};

/// Answer of a MaxCommonSubgraph (`mcs`) query: the explanation subgraph
/// of the label scoring the largest common induced subgraph with the query
/// graph.
struct McsAnswer {
  int graph_index = -1;  ///< owning graph of the best subgraph (-1 = none)
  int size = 0;          ///< nodes in the best common subgraph found
  /// True when every per-subgraph search proved optimality; false means
  /// `size` is a lower bound (the step budget bound somewhere).
  bool exact = true;
  uint64_t epoch = 0;    ///< snapshot the answer was computed on
};

/// What Save() wrote (or would write).
enum class SaveKind {
  kAuto,   ///< size policy: delta when cheap, full otherwise
  kFull,   ///< whole-epoch snapshot (roots a fresh chain)
  kDelta,  ///< incremental: only views changed since the persisted tip
};

/// The outcome of one Save().
struct SaveInfo {
  uint64_t epoch = 0;  ///< epoch the store now persists up to
  bool delta = false;  ///< true when an incremental snapshot was written
  bool wrote = true;   ///< false when the epoch was already persisted
};

/// Service counters. `epoch` / `num_labels` / `num_codes` / `admitted_*`
/// are read from ONE published snapshot, so they are mutually consistent —
/// stats() can never observe an epoch whose admission counters have not
/// been published with it (no torn view mid-batch).
struct ViewServiceStats {
  uint64_t epoch = 0;      ///< Epochs published so far.
  int num_labels = 0;      ///< Labels in the current snapshot.
  int num_codes = 0;       ///< Indexed canonical codes in the snapshot.
  /// Views admitted SINCE THIS SERVICE WAS CONSTRUCTED (or Opened). Like
  /// the cache counters, admission counters are process-lifetime state:
  /// they are not persisted, so a warm-started service restarts them at 0
  /// even though its recovered epoch is non-zero. Under batched admission
  /// several AdmitViews calls may publish as one epoch, so admitted_views
  /// can grow by more than one per epoch.
  uint64_t admitted_views = 0;
  /// AdmitView(s) calls folded into published snapshots (same lifetime
  /// semantics as admitted_views).
  uint64_t admitted_batches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Index query-path counters (IndexStats of the CURRENT snapshot's
  /// index; process-lifetime like the cache counters, but reset whenever a
  /// new epoch publishes a freshly built index).
  uint64_t index_fallback_scans = 0;
  uint64_t index_inconsistent_postings = 0;
  uint64_t index_filtered_rejects = 0;
  /// Compactions completed/failed since this service was constructed
  /// (monotone, unlike last_compact_error which a later success clears —
  /// so a transient background-compaction failure stays visible).
  uint64_t compactions = 0;
  uint64_t compaction_failures = 0;
  /// Last Compact() failure ("" when compaction never failed or succeeded
  /// since) — the only visible signal when BACKGROUND compaction fails.
  std::string last_compact_error;

  /// hits / (hits + misses); 0 when the cache has seen no lookups.
  double hit_rate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

/// Concurrent, snapshot-swapped, cached front end over a PatternIndex.
class ViewService {
 public:
  /// `db` may be null (no database queries) and must outlive the service.
  explicit ViewService(const GraphDatabase* db,
                       ViewServiceOptions options = {});
  /// Joins any in-flight background compaction.
  ~ViewService();

  ViewService(const ViewService&) = delete;
  ViewService& operator=(const ViewService&) = delete;

  // --- Durable storage (src/store/) ---

  /// Opens (or creates) a DURABLE service rooted at directory `dir`:
  /// warm-starts from the newest snapshot that validates (decoding the
  /// index postings — no isomorphism rebuild), replays WAL admissions
  /// newer than it (one index rebuild when any exist), truncates a torn
  /// WAL tail, and attaches the WAL so every subsequent admission is
  /// logged before it publishes. An empty directory opens as an empty
  /// epoch-0 service. `db` must be the database the stored views explain
  /// (null for services without database queries).
  static Result<std::unique_ptr<ViewService>> Open(
      const std::string& dir, const GraphDatabase* db,
      ViewServiceOptions options = {});

  /// True when this service was created by Open (Save/Compact available) —
  /// or by OpenReplica once Promote() attached the store.
  bool durable() const {
    return store_ptr_.load(std::memory_order_acquire) != nullptr;
  }
  /// The store directory ("" when not durable).
  const std::string& store_dir() const;

  // --- Replication (store/replication.h ships bytes; serve/
  // replica_applier.h drives the methods below) ---

  /// Opens a READ-ONLY replica over `dir`: like Open, but takes no store
  /// LOCK and attaches no WAL writer — the replica applier owns the
  /// directory and mirrors the primary into it; this service only publishes
  /// what the applier validated. Queries work normally; AdmitViews / Save /
  /// Compact answer FailedPrecondition until Promote(). An empty directory
  /// opens as an empty epoch-0 replica.
  static Result<std::unique_ptr<ViewService>> OpenReplica(
      const std::string& dir, const GraphDatabase* db,
      ViewServiceOptions options = {});

  /// True for a replica that has not been promoted. Mutating verbs consult
  /// this dynamically, so Promote() flips live protocol sessions too.
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }

  /// The directory a `replicate` stream serves from: the durable store dir,
  /// or the replica dir for OpenReplica services ("" for in-memory ones).
  const std::string& replication_dir() const;

  /// Publishes the full recovered state `plan` describes (chain image + WAL
  /// replay), replacing the current snapshot. The applier calls this after
  /// file-level sync passes the PlanRecovery verdict. FailedPrecondition on
  /// a non-replica. Also refuses (IOError) a plan whose final epoch is
  /// BELOW the replica's current epoch — acknowledged state never regresses.
  Status ReplicaPublishPlan(RecoveryPlan plan);

  /// Cheap incremental path: applies WAL `records` that extend the current
  /// epoch contiguously (records at or below it are skipped) and publishes
  /// ONE new snapshot. FailedPrecondition on a non-replica or on an epoch
  /// gap — the caller then escalates to the full PlanRecovery verdict.
  Status ReplicaApplyWalRecords(const std::vector<WalRecord>& records);

  /// Flips a replica writable: re-runs the PlanRecovery verdict over the
  /// replica directory, republishes exactly the recovered state, acquires
  /// the store LOCK (the applier must have released it), attaches the WAL
  /// writer, and registers the durable health checks — after this the
  /// service is indistinguishable from one ViewService::Open built.
  /// FailedPrecondition when not a replica; any verdict/lock/WAL failure
  /// leaves the service read-only and unlocked.
  Status Promote();

  /// Persists the current epoch into the store directory (atomic
  /// tmp+rename; the WAL is kept, so admissions racing the save stay
  /// recoverable). kFull writes `snapshot-<epoch>.gvxs` and roots a fresh
  /// chain; kDelta appends `delta-<epoch>.gvxd` holding only the views
  /// changed since the last persisted image (FailedPrecondition when no
  /// full base exists yet); kAuto picks by the DurableStoreOptions size
  /// policy. When the current epoch is already persisted, kAuto/kDelta
  /// return it without touching disk (`wrote` = false).
  /// FailedPrecondition when the service is not durable.
  Result<SaveInfo> Save(SaveKind kind = SaveKind::kAuto);

  /// Full Save() + reset the WAL (every logged admission is now covered by
  /// the snapshot) + prune older snapshot and delta files (when enabled) —
  /// chains fold back into a single full base. Returns the epoch compacted
  /// into. Safe to call concurrently with admissions and queries.
  Result<uint64_t> Compact();

  /// Publishes `view` (replacing any previous view for its label) as a new
  /// epoch. The index rebuild happens off to the side; readers keep
  /// serving the previous epoch until the atomic pointer swap. Returns the
  /// epoch THIS admission was published in (under concurrent admitters,
  /// epoch() may already be past it by the time the caller looks).
  Result<uint64_t> AdmitView(ExplanationView view);

  /// Publishes several views atomically (readers see all or none of them).
  /// Concurrent AdmitViews callers are COALESCED by a single-writer
  /// combining queue: one caller becomes the leader and publishes every
  /// queued admission as ONE epoch with ONE WAL append and ONE index
  /// rebuild — so admission throughput under load is not bounded by one
  /// WAL fsync + one rebuild per caller. Leadership is tenure-bounded
  /// (a leader serves a few rounds past its own admission, then hands
  /// off), so no caller waits unboundedly. The returned epoch is the
  /// combined batch's epoch (several concurrent callers may share it).
  Result<uint64_t> AdmitViews(std::vector<ExplanationView> views);

  // --- Single queries (each runs on one atomically loaded snapshot and is
  // bit-identical to the legacy ViewStore scan; see the oracle test). ---
  std::vector<int> Labels() const;
  std::vector<Pattern> PatternsForLabel(int label) const;
  std::vector<int> GraphsWithPattern(int label, const Pattern& p) const;
  /// Graphs of `label` whose explanation subgraph contains ALL of
  /// `patterns` (one batched bitset pass; equal to intersecting the
  /// per-pattern answers). Uncached — the multi-pattern key space is too
  /// sparse to be worth cache slots.
  std::vector<int> GraphsWithAllPatterns(
      int label, const std::vector<Pattern>& patterns) const;
  /// Approximate pattern query: the label's explanation subgraph sharing
  /// the largest common induced subgraph with `query` (McSplit search,
  /// `options.max_steps` spent PER subgraph). A bound-hit downgrades
  /// `exact`, never mis-ranks an answer the search did prove.
  McsAnswer MaxCommonSubgraph(int label, const Graph& query,
                              const McsOptions& options = {}) const;
  std::vector<int> LabelsOfPattern(const Pattern& p) const;
  std::vector<int> DatabaseGraphsWithPattern(const Pattern& p,
                                             int label = -1) const;
  std::vector<Pattern> DiscriminativePatterns(int label) const;

  /// Executes a batch across workers: the persistent pool when
  /// `batch_workers` > 0 (num_threads is then ignored), else a transient
  /// pool of `num_threads`. The whole batch runs against ONE snapshot, so
  /// every result carries the same epoch; results land in request order
  /// regardless of worker count.
  std::vector<ViewQueryResult> ExecuteBatch(
      const std::vector<ViewQuery>& queries, int num_threads = 1) const;

  /// Epoch of the currently published snapshot (0 = empty initial epoch).
  uint64_t epoch() const;

  ViewServiceStats stats() const;

 private:
  struct Snapshot {
    uint64_t epoch = 0;
    std::shared_ptr<const std::map<int, ExplanationView>> views;
    PatternIndex index;
    /// Cumulative admission counters, carried snapshot-to-snapshot so
    /// stats() reads them consistently WITH the epoch (one atomic load).
    uint64_t admitted_views = 0;
    uint64_t admitted_batches = 0;
  };

  /// One queued AdmitViews call awaiting the combining leader. Lives on
  /// the caller's stack for the duration of its AdmitViews call.
  struct AdmitWaiter {
    std::vector<ExplanationView> views;
    Status status = Status::OK();
    uint64_t epoch = 0;
    bool done = false;
  };

  /// One LRU stripe: list front = most recent; map values point into it.
  struct CacheShard {
    struct Entry {
      std::string key;
      ViewQueryResult result;
    };
    mutable std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Durable-store state, present only for Open-created services. The WAL
  /// writer is guarded by writer_mu_ (appends happen inside admissions).
  /// The compactor HANDLE is guarded by compact_mu (the worker may clear
  /// `compacting` before the scheduler's move-assignment into `compactor`
  /// completes, so flag-only coordination would race on the handle).
  struct DurableStore {
    ~DurableStore() {
      if (lock_fd >= 0) ::close(lock_fd);  // releases the flock
    }
    std::string dir;
    /// Held (flock LOCK_EX) for the service's lifetime — one writer per
    /// store directory; -1 until Open acquires it.
    int lock_fd = -1;
    WalWriter wal;
    /// Chain bookkeeping, guarded by writer_mu_ (mutated by Save/Compact/
    /// admissions, all of which hold it). `persisted_epoch` is the newest
    /// on-disk image (chain tip); `base_epoch` the full snapshot the chain
    /// roots at (`have_base` distinguishes a genuine epoch-0 base from no
    /// base at all); `chain_length` the deltas since that base;
    /// `dirty_labels` the labels admitted since the persisted tip (what
    /// the next delta must carry).
    uint64_t persisted_epoch = 0;
    uint64_t base_epoch = 0;
    bool have_base = false;
    int chain_length = 0;
    std::set<int> dirty_labels;
    /// Set when a Compact saved its snapshot but could not reset the WAL;
    /// every logged record is covered by that snapshot, so the next
    /// admission retries the reset instead of staying wedged.
    std::atomic<bool> wal_needs_reset{false};
    std::atomic<bool> compacting{false};
    std::mutex compact_mu;
    std::thread compactor;
    /// Last Compact() outcome ("" = success), for stats()/operators —
    /// background compaction has no caller to return its status to.
    std::mutex status_mu;
    std::string last_compact_error;
    /// Monotone compaction outcome counters (stats().compactions /
    /// .compaction_failures) — failures stay visible after a later
    /// success clears last_compact_error.
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> compaction_failures{0};
  };

  std::shared_ptr<const Snapshot> Load() const;
  void Publish(std::shared_ptr<const Snapshot> snap);
  /// Builds the snapshot a RecoveryPlan describes: chain image + WAL replay,
  /// postings decoded when nothing changed the view set, rebuilt otherwise.
  /// `dirty` (optional) receives the labels WAL records past the chain tip
  /// touched. Shared by Open, OpenReplica, ReplicaPublishPlan, and Promote
  /// so every path recovers to IDENTICAL state. Returns null for an empty
  /// plan (final epoch 0) — the caller keeps its epoch-0 snapshot.
  static std::shared_ptr<const Snapshot> BuildRecoveredSnapshot(
      RecoveryPlan plan, const GraphDatabase* db,
      const ViewServiceOptions& options, std::set<int>* dirty);
  ViewQueryResult Execute(const Snapshot& snap, const ViewQuery& q) const;
  /// Cache-through execution: looks up (epoch, query) and fills on miss.
  ViewQueryResult ExecuteCached(const Snapshot& snap,
                                const ViewQuery& q) const;
  /// Publishes one combined batch of waiters as ONE epoch (one WAL append,
  /// one index rebuild). Returns the published epoch via *published and
  /// the WAL size via *wal_bytes; on error nothing was published.
  Status AdmitCombined(const std::vector<AdmitWaiter*>& batch,
                       uint64_t* published, uint64_t* wal_bytes);
  /// Full-snapshot write for `snap`; requires writer_mu_ held and
  /// durable(). Resets the chain bookkeeping to root at `snap.epoch`.
  Status SaveLocked(const Snapshot& snap);
  /// Delta write for `snap` against the persisted tip; requires writer_mu_
  /// held, durable(), and a full base on disk.
  Status SaveDeltaLocked(const Snapshot& snap);
  /// Kicks off a background Compact when the WAL outgrew its threshold
  /// (`wal_bytes` is read under the writer lock by the caller).
  void MaybeScheduleCompact(uint64_t wal_bytes);
  /// Registers the service-level health checks (admit_queue); the
  /// constructor calls it, the destructor unregisters via health_handles_.
  void RegisterHealthChecks();
  /// Registers the durable-store checks (wal, store_lock, compaction);
  /// Open calls it once store_ is attached.
  void RegisterDurableHealthChecks();

  const GraphDatabase* db_;
  ViewServiceOptions options_;

  /// Current snapshot; accessed with std::atomic_load / std::atomic_store.
  std::shared_ptr<const Snapshot> snapshot_;
  /// Serializes writers (admissions, snapshot writes, WAL appends).
  std::mutex writer_mu_;
  /// Combining queue for AdmitViews: callers enqueue under admit_mu_; a
  /// caller that finds no active leader becomes one and serves combined
  /// batches for a bounded tenure (see AdmitViews). Waiters sleep on
  /// admit_cv_ until their waiter is done or leadership frees up.
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  std::vector<AdmitWaiter*> admit_queue_;
  bool admit_leader_active_ = false;
  /// Monotonic ms when the current combining leader took over (0 = no
  /// leader) — what the `admit_queue` health check and the net watchdog
  /// read to detect a wedged leader without touching admit_mu_.
  std::atomic<int64_t> admit_leader_since_ms_{0};
  /// Unregistered (front of ~ViewService) before any state they read dies.
  std::vector<obs::HealthCheckHandle> health_handles_;

  mutable std::vector<std::unique_ptr<CacheShard>> cache_;
  /// Persistent batch pool (null when options_.batch_workers == 0).
  std::unique_ptr<ThreadPool> batch_pool_;
  /// Null for purely in-memory services. Owner; unlocked readers (stats,
  /// MaybeScheduleCompact, the durable() guards) go through store_ptr_,
  /// which Promote() publishes with release ordering on a LIVE service —
  /// a plain read of store_ there would race the promotion.
  std::unique_ptr<DurableStore> store_;
  std::atomic<DurableStore*> store_ptr_{nullptr};
  /// Set by OpenReplica, cleared by Promote. Mutating entry points check it
  /// before touching the writer path.
  std::atomic<bool> read_only_{false};
  /// The replica's mirrored directory ("" for non-replica services); fixed
  /// at OpenReplica time, still valid (as store_->dir) after Promote.
  std::string replica_dir_;
};

}  // namespace gvex

#endif  // GVEX_SERVE_VIEW_SERVICE_H_
