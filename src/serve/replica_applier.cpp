#include "serve/replica_applier.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <set>
#include <utility>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "store/codec.h"
#include "store/recovery.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "util/string_util.h"

namespace gvex {

namespace {

struct ReplObs {
  obs::Gauge* lag_epochs;
  obs::Gauge* lag_bytes;
  obs::Counter* applied;
  obs::Counter* resyncs;
  obs::Counter* reships;
  obs::Counter* failstops;
};

const ReplObs& Obs() {
  static const ReplObs obs = [] {
    auto& m = obs::Metrics();
    ReplObs o;
    o.lag_epochs = m.GetGauge(
        "gvex_replication_lag_epochs",
        "Epochs the replica trails the primary by (0 when caught up).");
    o.lag_bytes = m.GetGauge(
        "gvex_replication_lag_bytes",
        "Primary WAL bytes not yet validated on the replica.");
    o.applied = m.GetCounter("gvex_replication_applied_records_total",
                             "WAL admission records applied on the replica.");
    o.resyncs = m.GetCounter(
        "gvex_replication_resyncs_total",
        "Local WAL resets after a primary generation change (compaction).");
    o.reships = m.GetCounter(
        "gvex_replication_reships_total",
        "Torn or rolled-back WAL tails truncated and re-requested.");
    o.failstops = m.GetCounter(
        "gvex_replication_failstops_total",
        "Divergence or data-loss verdicts that latched fail-stop.");
    return o;
  }();
  return obs;
}

bool SameManifest(const ReplManifest& a, const ReplManifest& b) {
  if (a.epoch != b.epoch || a.wal_bytes != b.wal_bytes ||
      a.wal_has_records != b.wal_has_records ||
      a.wal_first_epoch != b.wal_first_epoch ||
      a.files.size() != b.files.size()) {
    return false;
  }
  for (size_t i = 0; i < a.files.size(); ++i) {
    if (a.files[i].name != b.files[i].name ||
        a.files[i].bytes != b.files[i].bytes) {
      return false;
    }
  }
  return true;
}

Result<uint32_t> LocalPrefixCrc(const std::string& path, uint64_t bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  std::string buf(static_cast<size_t>(bytes), '\0');
  in.read(buf.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<uint64_t>(in.gcount()) != bytes) {
    return Status::IOError(StrFormat("%s shorter than %llu bytes",
                                     path.c_str(),
                                     static_cast<unsigned long long>(bytes)));
  }
  return Crc32(buf);
}

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("open %s for fsync: %s", path.c_str(), strerror(errno)));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(
        StrFormat("fsync %s: %s", path.c_str(), strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ReplicaApplier>> ReplicaApplier::Open(
    const std::string& dir, const GraphDatabase* db,
    std::unique_ptr<ReplicationEndpoint> endpoint,
    ViewServiceOptions service_options, ReplicaApplierOptions options) {
  if (endpoint == nullptr) {
    return Status::InvalidArgument("replication endpoint is null");
  }
  GVEX_RETURN_NOT_OK(EnsureDir(dir));
  std::unique_ptr<ReplicaApplier> applier(new ReplicaApplier());
  applier->dir_ = dir;
  applier->endpoint_ = std::move(endpoint);
  applier->options_ = options;

  // Own the directory like any writer would: the LOCK keeps a second
  // applier (or a primary ViewService::Open) off the same mirror.
  const std::string lock_path = dir + "/LOCK";
  const int fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("cannot open %s: %s", lock_path.c_str(), strerror(errno)));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::FailedPrecondition(StrFormat(
        "store %s is locked by another process", dir.c_str()));
  }
  applier->lock_fd_ = fd;

  GVEX_ASSIGN_OR_RETURN(
      applier->service_,
      ViewService::OpenReplica(dir, db, std::move(service_options)));

  ReplicaApplier* self = applier.get();
  applier->health_handles_.push_back(obs::RegisterHealthCheck(
      "replication", [self]() -> obs::HealthCheckResult {
        if (self->promoted()) {
          return {obs::HealthStatus::kOk, "promoted to primary"};
        }
        std::lock_guard<std::mutex> lock(self->state_mu_);
        if (!self->failstop_.ok()) {
          return {obs::HealthStatus::kFail,
                  "fail-stop: " + self->failstop_.ToString()};
        }
        if (!self->last_sync_error_.ok()) {
          return {obs::HealthStatus::kDegraded,
                  "sync failing: " + self->last_sync_error_.ToString()};
        }
        return {obs::HealthStatus::kOk,
                StrFormat("streaming (lag %llu epochs, %llu bytes)",
                          static_cast<unsigned long long>(
                              self->lag_epochs_.load(std::memory_order_relaxed)),
                          static_cast<unsigned long long>(
                              self->lag_bytes_.load(std::memory_order_relaxed)))};
      }));
  obs::RecordFlight(obs::FlightKind::kServer,
                    "replica applier attached to %s at epoch %llu",
                    dir.c_str(),
                    static_cast<unsigned long long>(self->service_->epoch()));
  return applier;
}

ReplicaApplier::~ReplicaApplier() {
  Stop();
  // The checks capture `this`; unregister before any state they read dies.
  health_handles_.clear();
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

Status ReplicaApplier::FailStop(const Status& why) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (failstop_.ok()) {
    failstop_ = why;
    Obs().failstops->Add(1);
    obs::RecordFlight(obs::FlightKind::kServer, "replication FAIL-STOP: %s",
                      why.ToString().c_str());
  }
  return failstop_;
}

void ReplicaApplier::SetLag(uint64_t lag_epochs, uint64_t lag_bytes) {
  lag_epochs_.store(lag_epochs, std::memory_order_relaxed);
  lag_bytes_.store(lag_bytes, std::memory_order_relaxed);
  Obs().lag_epochs->Set(static_cast<int64_t>(lag_epochs));
  Obs().lag_bytes->Set(static_cast<int64_t>(lag_bytes));
}

ReplicationLag ReplicaApplier::lag() const {
  ReplicationLag lag;
  lag.epochs = lag_epochs_.load(std::memory_order_relaxed);
  lag.bytes = lag_bytes_.load(std::memory_order_relaxed);
  return lag;
}

Status ReplicaApplier::failstop_status() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return failstop_;
}

Status ReplicaApplier::SyncOnce() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!failstop_.ok()) return failstop_;
  }
  if (promoted()) {
    return Status::FailedPrecondition("applier already promoted");
  }
  Status st = SyncPass();
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!failstop_.ok()) return failstop_;  // SyncPass latched one
  last_sync_error_ = st;
  return st;
}

Status ReplicaApplier::MirrorFile(const ReplFileInfo& info) {
  // tmp + fsync + rename: a half-fetched snapshot/delta never exists under
  // its real name, so PlanRecovery only ever sees complete mirrors.
  const std::string path = dir_ + "/" + info.name;
  const std::string tmp = path + ".repltmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError(StrFormat("cannot create %s", tmp.c_str()));
    }
    uint64_t offset = 0;
    while (offset < info.bytes) {
      const uint64_t want =
          std::min<uint64_t>(options_.fetch_chunk_bytes, info.bytes - offset);
      auto chunk = endpoint_->Fetch(info.name, offset, want);
      if (!chunk.ok()) {
        out.close();
        ::unlink(tmp.c_str());
        return chunk.status();
      }
      if (chunk.value().empty()) {
        // The file shrank or vanished on the primary mid-fetch (pruned by a
        // compaction); the next manifest reconciles it.
        out.close();
        ::unlink(tmp.c_str());
        return Status::Aborted(StrFormat(
            "%s changed on the primary mid-fetch", info.name.c_str()));
      }
      out.write(chunk.value().data(),
                static_cast<std::streamsize>(chunk.value().size()));
      offset += chunk.value().size();
    }
    out.flush();
    if (!out) {
      ::unlink(tmp.c_str());
      return Status::IOError(StrFormat("write %s failed", tmp.c_str()));
    }
  }
  Status st = FsyncPath(tmp);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status err = Status::IOError(StrFormat(
        "rename %s -> %s: %s", tmp.c_str(), path.c_str(), strerror(errno)));
    ::unlink(tmp.c_str());
    return err;
  }
  return Status::OK();
}

Status ReplicaApplier::SyncWal(const ReplManifest& manifest, bool* progressed,
                               bool* files_changed) {
  const std::string wal_path = dir_ + "/" + WalFileName();
  struct stat st;
  bool local_exists = ::stat(wal_path.c_str(), &st) == 0;
  uint64_t local_bytes = local_exists ? static_cast<uint64_t>(st.st_size) : 0;

  if (manifest.wal_bytes == 0) {
    // The primary has no WAL file at all (fresh directory). If the replica
    // mirrored one earlier this is a generation change; any applied epochs
    // the primary cannot reach fail-stop at the PlanRecovery check below.
    if (local_exists) {
      if (::unlink(wal_path.c_str()) != 0 && errno != ENOENT) {
        return Status::IOError(StrFormat("unlink %s: %s", wal_path.c_str(),
                                         strerror(errno)));
      }
      resyncs_.fetch_add(1, std::memory_order_relaxed);
      Obs().resyncs->Add(1);
      *progressed = true;
      *files_changed = true;
    }
    return Status::OK();
  }

  // Generation identity: a legit WAL reset (Compact) starts the new log at
  // a strictly larger first epoch. Different first epochs = resync, not
  // divergence.
  bool reset_local = false;
  if (local_exists && local_bytes > 0) {
    auto local_start = ReadWalStart(wal_path);
    if (!local_start.ok()) return local_start.status();
    const bool local_has = local_start.value().has_records;
    if (local_has && manifest.wal_has_records &&
        local_start.value().first_epoch != manifest.wal_first_epoch) {
      reset_local = true;
    } else if (local_has && !manifest.wal_has_records) {
      reset_local = true;  // the primary reset to an empty (header-only) log
    }
  }
  if (reset_local) {
    if (::truncate(wal_path.c_str(), 0) != 0) {
      return Status::IOError(
          StrFormat("truncate %s: %s", wal_path.c_str(), strerror(errno)));
    }
    local_bytes = 0;
    resyncs_.fetch_add(1, std::memory_order_relaxed);
    Obs().resyncs->Add(1);
    *progressed = true;
    *files_changed = true;
  }

  // Same generation: the shared prefix must be byte-identical, or the two
  // logs are divergent histories.
  const uint64_t shared = std::min(local_bytes, manifest.wal_bytes);
  if (shared > 0) {
    auto remote_crc = endpoint_->PrefixCrc(WalFileName(), shared);
    if (!remote_crc.ok()) return remote_crc.status();
    auto local_crc = LocalPrefixCrc(wal_path, shared);
    if (!local_crc.ok()) return local_crc.status();
    if (remote_crc.value() != local_crc.value()) {
      // A fail-stop verdict needs a STABLE observation: the primary may
      // have compacted (resetting the WAL to a new generation) between the
      // manifest pull and this CRC probe, which makes the comparison
      // meaningless. First epochs strictly increase across resets, so an
      // unchanged WAL identity on a fresh manifest proves no reset raced
      // this pass — only then is the mismatch a genuine fork.
      auto fresh = endpoint_->Manifest();
      if (!fresh.ok()) return fresh.status();
      if (fresh.value().wal_first_epoch != manifest.wal_first_epoch ||
          fresh.value().wal_has_records != manifest.wal_has_records ||
          fresh.value().wal_bytes < shared) {
        return Status::Aborted(
            "primary WAL changed generation mid-pass; retrying");
      }
      return FailStop(Status::IOError(StrFormat(
          "replication divergence: WAL prefixes disagree over the first "
          "%llu bytes (local CRC %08x, primary %08x) — the replica and "
          "primary histories have forked",
          static_cast<unsigned long long>(shared), local_crc.value(),
          remote_crc.value())));
    }
  }

  // The primary's log is SHORTER than our mirror of it: it dropped a torn
  // tail on restart or rolled back an append that never fsynced. Those
  // bytes were never applied here unless the replica published them — in
  // which case the PlanRecovery regression check below fail-stops.
  if (local_bytes > manifest.wal_bytes) {
    if (::truncate(wal_path.c_str(), manifest.wal_bytes) != 0) {
      return Status::IOError(
          StrFormat("truncate %s: %s", wal_path.c_str(), strerror(errno)));
    }
    local_bytes = manifest.wal_bytes;
    reships_.fetch_add(1, std::memory_order_relaxed);
    Obs().reships->Add(1);
    *progressed = true;
    *files_changed = true;  // force the full-plan publish path
  }

  // Append the missing suffix [local_bytes, manifest.wal_bytes).
  if (local_bytes < manifest.wal_bytes) {
    const int fd =
        ::open(wal_path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
    if (fd < 0) {
      return Status::IOError(
          StrFormat("open %s: %s", wal_path.c_str(), strerror(errno)));
    }
    uint64_t offset = local_bytes;
    Status fetch_status = Status::OK();
    while (offset < manifest.wal_bytes) {
      const uint64_t want = std::min<uint64_t>(options_.fetch_chunk_bytes,
                                               manifest.wal_bytes - offset);
      auto chunk = endpoint_->Fetch(WalFileName(), offset, want);
      if (!chunk.ok()) {
        fetch_status = chunk.status();
        break;
      }
      if (chunk.value().empty()) break;  // primary log shrank mid-pass
      const char* data = chunk.value().data();
      size_t remaining = chunk.value().size();
      while (remaining > 0) {
        const ssize_t n = ::write(fd, data, remaining);
        if (n < 0) {
          if (errno == EINTR) continue;
          fetch_status = Status::IOError(StrFormat(
              "write %s: %s", wal_path.c_str(), strerror(errno)));
          break;
        }
        data += n;
        remaining -= static_cast<size_t>(n);
      }
      if (!fetch_status.ok()) break;
      offset += chunk.value().size();
    }
    ::fsync(fd);
    ::close(fd);
    if (offset > local_bytes) *progressed = true;
    local_bytes = offset;
    if (!fetch_status.ok()) return fetch_status;
  }

  // Validate the mirror the same way recovery would: keep the longest
  // valid prefix; torn bytes are truncated and RE-REQUESTED next pass (a
  // partial record is never applied — that is the re-ship contract).
  auto replay = ReplayWal(wal_path);
  if (!replay.ok()) {
    if (replay.status().IsNotFound()) return Status::OK();
    // A mirrored byte-identical prefix whose header does not even parse
    // means the primary's own log is corrupt — not retryable.
    return FailStop(replay.status());
  }
  if (replay.value().torn_tail && replay.value().valid_bytes < local_bytes) {
    if (::truncate(wal_path.c_str(), replay.value().valid_bytes) != 0) {
      return Status::IOError(
          StrFormat("truncate %s: %s", wal_path.c_str(), strerror(errno)));
    }
    reships_.fetch_add(1, std::memory_order_relaxed);
    Obs().reships->Add(1);
  }
  return Status::OK();
}

Status ReplicaApplier::SyncPass() {
  auto manifest_or = endpoint_->Manifest();
  if (!manifest_or.ok()) return manifest_or.status();
  const ReplManifest manifest = std::move(manifest_or).value();

  bool progressed = false;
  bool files_changed = false;

  // Local inventory through the same listing rules the primary serves.
  ReplicationSource local(dir_, [] { return uint64_t{0}; });
  auto local_or = local.Manifest();
  if (!local_or.ok()) return local_or.status();
  std::map<std::string, uint64_t> local_files;
  for (const ReplFileInfo& f : local_or.value().files) {
    local_files[f.name] = f.bytes;
  }

  // 1. Mirror snapshot/delta files. Same name + different bytes is two
  //    histories under one name — fail-stop, never overwrite.
  for (const ReplFileInfo& f : manifest.files) {
    auto it = local_files.find(f.name);
    if (it != local_files.end()) {
      if (it->second != f.bytes) {
        return FailStop(Status::IOError(StrFormat(
            "replication divergence: %s is %llu bytes locally but %llu on "
            "the primary — refusing to overwrite acknowledged state",
            f.name.c_str(), static_cast<unsigned long long>(it->second),
            static_cast<unsigned long long>(f.bytes))));
      }
      if (options_.verify_file_crcs) {
        auto remote_crc = endpoint_->PrefixCrc(f.name, f.bytes);
        if (!remote_crc.ok()) return remote_crc.status();
        auto local_crc = local.PrefixCrc(f.name, f.bytes);
        if (!local_crc.ok()) return local_crc.status();
        if (remote_crc.value() != local_crc.value()) {
          return FailStop(Status::IOError(StrFormat(
              "replication divergence: %s differs from the primary's copy "
              "(local CRC %08x, primary %08x)",
              f.name.c_str(), local_crc.value(), remote_crc.value())));
        }
      }
      continue;
    }
    Status st = MirrorFile(f);
    if (!st.ok()) return st;
    files_changed = true;
    progressed = true;
  }

  // 2. Drop local files the primary pruned (compaction cleanup).
  std::set<std::string> primary_names;
  for (const ReplFileInfo& f : manifest.files) primary_names.insert(f.name);
  for (const auto& [name, bytes] : local_files) {
    (void)bytes;
    if (primary_names.count(name) != 0) continue;
    const std::string path = dir_ + "/" + name;
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError(
          StrFormat("unlink %s: %s", path.c_str(), strerror(errno)));
    }
    files_changed = true;
    progressed = true;
  }
  if (files_changed) GVEX_RETURN_NOT_OK(SyncDir(dir_));

  // 3. Mirror the WAL (generation check, prefix CRC, append, torn-tail
  //    truncate + re-ship).
  GVEX_RETURN_NOT_OK(SyncWal(manifest, &progressed, &files_changed));

  // 4. The same recovery verdict a restarting primary would compute. A
  //    failure right after progress is a mid-sync transient; with nothing
  //    fetched and an unchanged manifest it can never heal — fail-stop.
  auto plan_or = PlanRecovery(dir_);
  if (!plan_or.ok()) {
    const bool manifest_changed =
        !have_last_manifest_ || !SameManifest(last_manifest_, manifest);
    last_manifest_ = manifest;
    have_last_manifest_ = true;
    if (progressed || manifest_changed) return plan_or.status();
    return FailStop(plan_or.status());
  }
  RecoveryPlan plan = std::move(plan_or).value();
  const uint64_t local_wal_valid = plan.have_wal ? plan.replay.valid_bytes : 0;
  const uint64_t before = service_->epoch();
  if (plan.final_epoch < before) {
    return FailStop(Status::IOError(StrFormat(
        "replication would regress the replica from epoch %llu to %llu — "
        "state this replica acknowledged is missing from the primary",
        static_cast<unsigned long long>(before),
        static_cast<unsigned long long>(plan.final_epoch))));
  }
  if (plan.final_epoch > before) {
    Status apply;
    if (files_changed || before < plan.snapshot.epoch) {
      apply = service_->ReplicaPublishPlan(std::move(plan));
    } else {
      apply = service_->ReplicaApplyWalRecords(plan.replay.records);
      if (apply.IsFailedPrecondition()) {
        // Epoch gap the cheap path cannot bridge — full verdict publish.
        apply = service_->ReplicaPublishPlan(std::move(plan));
      }
    }
    if (!apply.ok()) return apply;
    const uint64_t applied = service_->epoch() - before;
    applied_records_.fetch_add(applied, std::memory_order_relaxed);
    Obs().applied->Add(applied);
  }

  // 5. Lag as of this manifest.
  const uint64_t cur = service_->epoch();
  SetLag(manifest.epoch > cur ? manifest.epoch - cur : 0,
         manifest.wal_bytes > local_wal_valid
             ? manifest.wal_bytes - local_wal_valid
             : 0);
  last_manifest_ = manifest;
  have_last_manifest_ = true;
  return Status::OK();
}

void ReplicaApplier::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (sync_thread_.joinable()) return;
  stop_requested_ = false;
  sync_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(thread_mu_);
    while (!stop_requested_) {
      lock.unlock();
      (void)SyncOnce();
      lock.lock();
      if (stop_requested_) break;
      thread_cv_.wait_for(
          lock, std::chrono::duration<double>(options_.poll_interval_sec));
    }
  });
}

void ReplicaApplier::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_requested_ = true;
    thread_cv_.notify_all();
    worker = std::move(sync_thread_);
  }
  if (worker.joinable()) worker.join();
}

Result<uint64_t> ReplicaApplier::Promote() {
  Stop();
  if (promoted()) return service_->epoch();  // idempotent
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!failstop_.ok()) {
      return Status::FailedPrecondition(StrFormat(
          "refusing to promote a fail-stopped replica: %s",
          failstop_.ToString().c_str()));
    }
  }
  // Hand the LOCK to the service: release ours, let Promote re-acquire it
  // exclusively (it refuses if anyone else grabbed the store meanwhile).
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
  Status st = service_->Promote();
  if (!st.ok()) {
    // Keep mirroring read-only: re-take the LOCK so the dir stays owned.
    const int fd = ::open((dir_ + "/LOCK").c_str(),
                          O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd >= 0 && ::flock(fd, LOCK_EX | LOCK_NB) == 0) {
      lock_fd_ = fd;
    } else if (fd >= 0) {
      ::close(fd);
    }
    return st;
  }
  promoted_.store(true, std::memory_order_release);
  SetLag(0, 0);
  return service_->epoch();
}

}  // namespace gvex
