// The legacy queryable view store (§1, Table 1), now a thin compatibility
// shim over serve/pattern_index.h: every query routes through the inverted
// index, so the answers the paper motivates ("which toxicophores occur in
// mutagens?", "which graphs contain pattern P?") are hash lookups + bitset
// walks instead of O(patterns x subgraphs) isomorphism scans.
//
// The original linear-scan implementation is retained behind
// `ViewStoreOptions::use_index = false`. It is the ORACLE: the index is
// pinned bit-identical to it by the parity test in
// tests/serve/pattern_index_test.cpp, and the serving benchmark measures
// the indexed path against it. New code should prefer serve/view_service.h
// (concurrent, snapshot-swapped, cached); this class keeps the historical
// single-threaded API for existing callers.
//
// Complexity: AddView only marks the index dirty; the O(codes x subgraphs
// + codes x database) cross-product is paid once, on the first query after
// a (batch of) registration(s). Queries are then O(1) lookups plus output
// size; see pattern_index.h.
//
// Thread-safety: AddView mutates the store and must be externally
// synchronized; once all views are registered, the const query methods are
// safe to call concurrently (the lazy rebuild is mutex-guarded, and the
// index is immutable once built).

#ifndef GVEX_SERVE_VIEW_STORE_H_
#define GVEX_SERVE_VIEW_STORE_H_

#include <map>
#include <mutex>
#include <vector>

#include "explain/explanation.h"
#include "graph/graph_database.h"
#include "pattern/isomorphism.h"
#include "pattern/pattern.h"
#include "serve/pattern_index.h"

namespace gvex {

/// Store behavior knobs.
struct ViewStoreOptions {
  /// Route queries through the PatternIndex (default). When false, every
  /// query runs the legacy linear scan — the oracle the index is pinned to.
  bool use_index = true;
  /// Workers used for index rebuilds (identical result for any count).
  int build_threads = 1;
};

/// Indexes a set of explanation views for direct querying.
class ViewStore {
 public:
  /// `db` must outlive the store; views are copied in.
  explicit ViewStore(const GraphDatabase* db, ViewStoreOptions options = {});

  /// Registers a view (one per label); the index is rebuilt lazily on the
  /// next query.
  void AddView(ExplanationView view);

  /// Labels that have a registered view.
  std::vector<int> Labels() const;

  /// "Which patterns explain label l?" — the higher tier of l's view.
  const std::vector<Pattern>& PatternsForLabel(int label) const;

  /// "Which graphs of label group l contain pattern P (in their explanation
  /// subgraph)?" Returns database graph indices.
  std::vector<int> GraphsWithPattern(int label, const Pattern& p) const;

  /// "Which labels does pattern P explain?" — labels whose pattern tier
  /// contains an isomorphic pattern.
  std::vector<int> LabelsOfPattern(const Pattern& p) const;

  /// "Which *original* graphs in the database contain P?" — full-data
  /// pattern query, restricted to `label` (-1 = all graphs).
  std::vector<int> DatabaseGraphsWithPattern(const Pattern& p,
                                             int label = -1) const;

  /// Discriminative patterns for `label`: patterns of l's view that match no
  /// explanation subgraph of any other label (the P12-style structures of
  /// Example 1.1).
  std::vector<Pattern> DiscriminativePatterns(int label) const;

  /// The backing index, built on demand (empty when `use_index` is false).
  const PatternIndex& index() const;

 private:
  /// Rebuilds the index if a registration dirtied it; returns it.
  const PatternIndex& EnsureIndex() const;

  const GraphDatabase* db_;
  ViewStoreOptions options_;
  std::map<int, ExplanationView> views_;
  MatchOptions match_options_;
  mutable std::mutex index_mu_;
  mutable bool index_dirty_ = true;
  mutable PatternIndex index_;
};

}  // namespace gvex

#endif  // GVEX_SERVE_VIEW_STORE_H_
