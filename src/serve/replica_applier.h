// ReplicaApplier: the standby side of WAL-shipping replication. Pulls the
// primary's store directory through a ReplicationEndpoint (manifest /
// ranged fetch / prefix CRC — store/replication.h), mirrors it byte-for-
// byte into a local directory it owns (holding the store LOCK exclusively,
// like any writer), and feeds the mirrored state through the SAME
// ReplayWal + PlanRecovery verdict a restarted primary would recover with.
// A read-only ViewService (ViewService::OpenReplica) publishes every
// validated epoch, so the standby answers queries the whole time.
//
// Sync state machine (one SyncOnce pass):
//   1. Pull the manifest. Unreachable primary = DEGRADED, retried forever.
//   2. Mirror snapshot/delta files: fetch missing ones (tmp + fsync +
//      rename, so a partially fetched file never exists under its real
//      name), delete ones the primary pruned. A same-named file with
//      different bytes is two histories — FAIL-STOP.
//   3. Mirror the WAL as a byte-identical prefix of the primary's:
//      * different first-record epochs = a benign generation change (the
//        primary compacted) — reset the local log and resync;
//      * equal first epochs + prefix-CRC mismatch = divergence — FAIL-STOP;
//      * a torn tail after fetching (the primary died or rolled back
//        mid-append) — truncate to the valid prefix and RE-REQUEST those
//        bytes next pass (a re-ship; a partial record is never applied).
//   4. Run PlanRecovery over the mirrored directory. A verdict failure
//      right after real progress is a mid-sync transient (retried); with
//      no progress and an unchanged manifest it is permanent — FAIL-STOP.
//      A plan whose final epoch is BELOW the replica's published epoch
//      would regress acknowledged state — FAIL-STOP.
//   5. Publish: WAL records that extend the current epoch contiguously go
//      through the cheap incremental path; anything else (new files, a
//      generation change, a gap) republishes the full recovered plan.
//
// FAIL-STOP is latched: once divergence or provable data loss is detected
// the applier never applies again and Promote() refuses — silent data loss
// is never an outcome. Metrics: gvex_replication_lag_{epochs,bytes} gauges
// plus applied/resync/reship/failstop counters; a `replication` health
// check reports ok (streaming) / degraded (primary unreachable) / fail
// (fail-stop latched).
//
// Promote(): stop the sync thread, release the applier's LOCK, and run
// ViewService::Promote() — recovery-verdict validation, LOCK re-taken by
// the service, WAL writer attached, service flips writable.
//
// Thread-safety: SyncOnce is NOT reentrant (one sync thread or one test
// driver); lag(), status(), and the health check are safe from any thread.

#ifndef GVEX_SERVE_REPLICA_APPLIER_H_
#define GVEX_SERVE_REPLICA_APPLIER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "serve/view_service.h"
#include "store/replication.h"
#include "util/status.h"

namespace gvex {

struct ReplicaApplierOptions {
  /// Background sync period (Start()); SyncOnce ignores it.
  double poll_interval_sec = 0.5;
  /// Ranged-fetch chunk size.
  uint64_t fetch_chunk_bytes = 1 << 20;
  /// Re-verify the full-file CRC of every mirrored snapshot/delta each
  /// pass (catches local corruption and same-name divergence immediately).
  /// Sizes are always compared; disable only for very large stores.
  bool verify_file_crcs = true;
};

/// Replication lag as of the last completed manifest pull.
struct ReplicationLag {
  uint64_t epochs = 0;  ///< primary epoch - replica epoch (0 when caught up)
  uint64_t bytes = 0;   ///< primary WAL bytes not yet validated locally
};

class ReplicaApplier {
 public:
  /// Takes ownership of `dir` (store LOCK held for the applier's lifetime)
  /// and of `endpoint`. `db`/`options` configure the read-only service.
  static Result<std::unique_ptr<ReplicaApplier>> Open(
      const std::string& dir, const GraphDatabase* db,
      std::unique_ptr<ReplicationEndpoint> endpoint,
      ViewServiceOptions service_options = {},
      ReplicaApplierOptions options = {});

  ~ReplicaApplier();

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// The read-only service publishing validated epochs (owned by the
  /// applier; valid for the applier's lifetime, including after Promote).
  ViewService* service() const { return service_.get(); }

  /// One full sync pass (deterministic building block for tests; the
  /// background thread just calls it on a timer). Transient errors
  /// (unreachable primary, mid-sync verdict failures) return non-OK and are
  /// safe to retry; after a FAIL-STOP every call returns the latched error.
  Status SyncOnce();

  /// Starts / stops the background sync thread (idempotent).
  void Start();
  void Stop();

  /// Stops the thread, refuses when fail-stopped, releases the applier's
  /// LOCK, and promotes the service writable. On success the applier is
  /// done (its service keeps running as a primary); on failure the LOCK is
  /// re-acquired and the replica keeps serving read-only.
  Result<uint64_t> Promote();

  ReplicationLag lag() const;
  /// OK while streaming; the latched fail-stop error after one.
  Status failstop_status() const;
  bool promoted() const { return promoted_.load(std::memory_order_acquire); }

  /// Counters since this applier was opened.
  uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_relaxed);
  }
  uint64_t resyncs() const { return resyncs_.load(std::memory_order_relaxed); }
  uint64_t reships() const { return reships_.load(std::memory_order_relaxed); }

 private:
  ReplicaApplier() = default;

  Status SyncPass();
  /// Latches `why` as the permanent fail-stop verdict and returns it.
  Status FailStop(const Status& why);
  /// Fetches [offset, end) of `name` appending to local `path` ("" fetches
  /// to a tmp file first and renames into place at the end).
  Status MirrorFile(const ReplFileInfo& info);
  Status SyncWal(const ReplManifest& manifest, bool* progressed,
                 bool* files_changed);
  void SetLag(uint64_t lag_epochs, uint64_t lag_bytes);

  std::string dir_;
  int lock_fd_ = -1;
  std::unique_ptr<ReplicationEndpoint> endpoint_;
  ReplicaApplierOptions options_;
  std::unique_ptr<ViewService> service_;

  // Sync-thread state (only touched by SyncOnce / Promote).
  ReplManifest last_manifest_;
  bool have_last_manifest_ = false;

  // Cross-thread state.
  mutable std::mutex state_mu_;
  Status failstop_ = Status::OK();       ///< guarded by state_mu_
  Status last_sync_error_ = Status::OK();  ///< guarded by state_mu_
  std::atomic<uint64_t> lag_epochs_{0};
  std::atomic<uint64_t> lag_bytes_{0};
  std::atomic<uint64_t> applied_records_{0};
  std::atomic<uint64_t> resyncs_{0};
  std::atomic<uint64_t> reships_{0};
  std::atomic<bool> promoted_{false};

  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  bool stop_requested_ = false;
  std::thread sync_thread_;

  std::vector<obs::HealthCheckHandle> health_handles_;
};

}  // namespace gvex

#endif  // GVEX_SERVE_REPLICA_APPLIER_H_
