#include "serve/pattern_index.h"

#include <algorithm>
#include <utility>

#include "util/thread_pool.h"

namespace gvex {

namespace {

const std::vector<Pattern> kEmptyPatterns;
const std::map<int, ExplanationView> kEmptyViews;

inline bool BitSet(const std::vector<uint64_t>& bits, size_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1u;
}

inline void SetBit(std::vector<uint64_t>* bits, size_t i) {
  (*bits)[i >> 6] |= uint64_t{1} << (i & 63);
}

inline bool AllZero(const std::vector<uint64_t>& bits) {
  for (uint64_t w : bits) {
    if (w != 0) return false;
  }
  return true;
}

}  // namespace

PatternIndex PatternIndex::Build(
    std::shared_ptr<const std::map<int, ExplanationView>> views,
    const GraphDatabase* db, const BuildOptions& options) {
  PatternIndex index;
  index.views_ = std::move(views);
  index.db_ = db;
  index.match_ = options.match;
  index.database_indexed_ = options.index_database && db != nullptr;
  if (index.views_ == nullptr) return index;

  // Unique codes in deterministic first-seen order (labels ascending, tier
  // order) with one representative pattern per code; tier_position / labels
  // postings are filled in the same pass.
  std::vector<const Pattern*> reps;
  std::unordered_map<std::string, size_t> code_slot;
  std::vector<PatternPostings> postings;
  for (const auto& [label, view] : *index.views_) {
    for (size_t pos = 0; pos < view.patterns.size(); ++pos) {
      const Pattern& p = view.patterns[pos];
      auto [it, inserted] =
          code_slot.emplace(p.canonical_code(), reps.size());
      if (inserted) {
        reps.push_back(&p);
        postings.emplace_back();
      }
      PatternPostings& post = postings[it->second];
      if (post.tier_position.emplace(label, static_cast<int>(pos)).second) {
        post.labels.push_back(label);  // labels ascend with the outer loop
      }
    }
  }

  // The expensive cross-product — one containment check per (code, subgraph)
  // and, when database indexing is on, per (code, database graph) — sharded
  // over the codes. Each shard writes only its own postings slots, so the
  // result is identical for every worker count.
  const int num_codes = static_cast<int>(reps.size());
  const int threads = std::max(1, options.num_threads);
  ThreadPool::ParallelForShards(
      threads, threads * 4, num_codes, [&](const Shard& shard) {
        for (int c = shard.begin; c < shard.end; ++c) {
          const Pattern& p = *reps[static_cast<size_t>(c)];
          PatternPostings& post = postings[static_cast<size_t>(c)];
          for (const auto& [label, view] : *index.views_) {
            std::vector<uint64_t> bits((view.subgraphs.size() + 63) / 64, 0);
            for (size_t i = 0; i < view.subgraphs.size(); ++i) {
              if (ContainsPattern(view.subgraphs[i].subgraph, p.graph(),
                                  index.match_)) {
                SetBit(&bits, i);
              }
            }
            post.subgraph_bits.emplace(label, std::move(bits));
          }
          if (index.database_indexed_) {
            for (int i = 0; i < db->size(); ++i) {
              if (ContainsPattern(db->graph(i), p.graph(), index.match_)) {
                post.db_graphs.push_back(i);
              }
            }
          }
        }
      });

  for (auto& [code, slot] : code_slot) {
    index.postings_.emplace(code, std::move(postings[slot]));
  }
  return index;
}

PatternIndex PatternIndex::Build(const std::map<int, ExplanationView>& views,
                                 const GraphDatabase* db,
                                 const BuildOptions& options) {
  return Build(std::make_shared<const std::map<int, ExplanationView>>(views),
               db, options);
}

std::vector<StoredPostings> PatternIndex::ExportPostings() const {
  std::vector<StoredPostings> out;
  out.reserve(postings_.size());
  for (const auto& [code, post] : postings_) {
    StoredPostings stored;
    stored.code = code;
    stored.labels = post.labels;
    stored.tier_position = post.tier_position;
    stored.subgraph_bits = post.subgraph_bits;
    stored.db_graphs = post.db_graphs;
    out.push_back(std::move(stored));
  }
  std::sort(out.begin(), out.end(),
            [](const StoredPostings& a, const StoredPostings& b) {
              return a.code < b.code;
            });
  return out;
}

PatternIndex PatternIndex::FromStored(
    std::shared_ptr<const std::map<int, ExplanationView>> views,
    const GraphDatabase* db, const MatchOptions& match, bool database_indexed,
    const std::vector<StoredPostings>& postings) {
  PatternIndex index;
  index.views_ = std::move(views);
  index.db_ = db;
  index.match_ = match;
  // Snapshots may predate the database the service now runs against; a
  // missing database disables the precomputed db_graphs path exactly like
  // a scratch build with db == nullptr.
  index.database_indexed_ = database_indexed && db != nullptr;
  index.postings_.reserve(postings.size());
  for (const StoredPostings& stored : postings) {
    PatternPostings post;
    post.labels = stored.labels;
    post.tier_position = stored.tier_position;
    post.subgraph_bits = stored.subgraph_bits;
    post.db_graphs = stored.db_graphs;
    index.postings_.emplace(stored.code, std::move(post));
  }
  return index;
}

const std::map<int, ExplanationView>& PatternIndex::views() const {
  return views_ == nullptr ? kEmptyViews : *views_;
}

std::vector<int> PatternIndex::Labels() const {
  std::vector<int> out;
  out.reserve(views().size());
  for (const auto& [label, view] : views()) out.push_back(label);
  return out;
}

const std::vector<Pattern>& PatternIndex::PatternsForLabel(int label) const {
  auto it = views().find(label);
  return it == views().end() ? kEmptyPatterns : it->second.patterns;
}

const PatternPostings* PatternIndex::Find(const std::string& code) const {
  auto it = postings_.find(code);
  return it == postings_.end() ? nullptr : &it->second;
}

std::vector<int> PatternIndex::GraphsWithPattern(int label,
                                                 const Pattern& p) const {
  std::vector<int> out;
  auto it = views().find(label);
  if (it == views().end()) return out;
  const std::vector<ExplanationSubgraph>& subgraphs = it->second.subgraphs;
  if (const PatternPostings* post = Find(p.canonical_code())) {
    auto bits = post->subgraph_bits.find(label);
    if (bits != post->subgraph_bits.end()) {
      for (size_t i = 0; i < subgraphs.size(); ++i) {
        if (BitSet(bits->second, i)) out.push_back(subgraphs[i].graph_index);
      }
      return out;
    }
  }
  // Non-exact pattern: fall back to the legacy containment scan.
  for (const auto& s : subgraphs) {
    if (ContainsPattern(s.subgraph, p.graph(), match_)) {
      out.push_back(s.graph_index);
    }
  }
  return out;
}

std::vector<int> PatternIndex::LabelsOfPattern(const Pattern& p) const {
  // Tier membership is exact canonical-code equality (Pattern::IsomorphicTo),
  // so an unknown code has no carriers — no fallback needed.
  const PatternPostings* post = Find(p.canonical_code());
  return post == nullptr ? std::vector<int>() : post->labels;
}

std::vector<int> PatternIndex::DatabaseGraphsWithPattern(const Pattern& p,
                                                         int label) const {
  std::vector<int> out;
  if (db_ == nullptr) return out;
  const PatternPostings* post =
      database_indexed_ ? Find(p.canonical_code()) : nullptr;
  if (post != nullptr) {
    if (label < 0) return post->db_graphs;
    for (int i : post->db_graphs) {
      const int l = db_->has_predictions() ? db_->predicted_label(i)
                                           : db_->true_label(i);
      if (l == label) out.push_back(i);
    }
    return out;
  }
  for (int i = 0; i < db_->size(); ++i) {
    if (label >= 0) {
      const int l = db_->has_predictions() ? db_->predicted_label(i)
                                           : db_->true_label(i);
      if (l != label) continue;
    }
    if (ContainsPattern(db_->graph(i), p.graph(), match_)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<Pattern> PatternIndex::DiscriminativePatterns(int label) const {
  std::vector<Pattern> out;
  auto it = views().find(label);
  if (it == views().end()) return out;
  for (const Pattern& p : it->second.patterns) {
    // Tier patterns are always indexed (the index is built from the same
    // view snapshot it queries), so this lookup cannot miss.
    const PatternPostings* post = Find(p.canonical_code());
    bool found_elsewhere = false;
    for (const auto& [other_label, other_view] : views()) {
      if (other_label == label) continue;
      (void)other_view;
      auto bits = post->subgraph_bits.find(other_label);
      if (bits != post->subgraph_bits.end() && !AllZero(bits->second)) {
        found_elsewhere = true;
        break;
      }
    }
    if (!found_elsewhere) out.push_back(p);
  }
  return out;
}

}  // namespace gvex
