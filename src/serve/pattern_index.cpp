#include "serve/pattern_index.h"

#include <algorithm>
#include <utility>

#include "pattern/matcher.h"
#include "util/bitops.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace gvex {

namespace {

const std::vector<Pattern> kEmptyPatterns;
const std::map<int, ExplanationView> kEmptyViews;

}  // namespace

// Every fallback containment check funnels through here: the candidate-
// filtered matcher (bit-identical answers to the legacy blind scan), with
// the filter's fast-reject rate surfaced in stats().
bool PatternIndex::SubgraphContains(const Graph& subgraph,
                                    const Pattern& p) const {
  MatcherStats mstats;
  const bool contains =
      FilteredContainsPattern(subgraph, p.graph(), match_, &mstats);
  if (mstats.filtered_out) {
    stats_->filtered_rejects.fetch_add(1, std::memory_order_relaxed);
  }
  return contains;
}

PatternIndex PatternIndex::Build(
    std::shared_ptr<const std::map<int, ExplanationView>> views,
    const GraphDatabase* db, const BuildOptions& options) {
  PatternIndex index;
  index.views_ = std::move(views);
  index.db_ = db;
  index.match_ = options.match;
  index.database_indexed_ = options.index_database && db != nullptr;
  if (index.views_ == nullptr) return index;

  // Unique codes in deterministic first-seen order (labels ascending, tier
  // order) with one representative pattern per code; tier_position / labels
  // postings are filled in the same pass.
  std::vector<const Pattern*> reps;
  std::unordered_map<std::string, size_t> code_slot;
  std::vector<PatternPostings> postings;
  for (const auto& [label, view] : *index.views_) {
    for (size_t pos = 0; pos < view.patterns.size(); ++pos) {
      const Pattern& p = view.patterns[pos];
      auto [it, inserted] =
          code_slot.emplace(p.canonical_code(), reps.size());
      if (inserted) {
        reps.push_back(&p);
        postings.emplace_back();
      }
      PatternPostings& post = postings[it->second];
      if (post.tier_position.emplace(label, static_cast<int>(pos)).second) {
        post.labels.push_back(label);  // labels ascend with the outer loop
      }
    }
  }

  // The expensive cross-product — one containment check per (code, subgraph)
  // and, when database indexing is on, per (code, database graph) — sharded
  // over the codes. Each shard writes only its own postings slots, so the
  // result is identical for every worker count. The checks run through the
  // candidate-filtered matcher: most (code, subgraph) pairs don't match and
  // die at filtering without a backtracking step.
  const int num_codes = static_cast<int>(reps.size());
  const int threads = std::max(1, options.num_threads);
  ThreadPool::ParallelForShards(
      threads, threads * 4, num_codes, [&](const Shard& shard) {
        for (int c = shard.begin; c < shard.end; ++c) {
          const Pattern& p = *reps[static_cast<size_t>(c)];
          PatternPostings& post = postings[static_cast<size_t>(c)];
          CoverageBits coverage;
          for (const auto& [label, view] : *index.views_) {
            std::vector<uint64_t> bits(
                bitops::WordsForBits(view.subgraphs.size()), 0);
            for (size_t i = 0; i < view.subgraphs.size(); ++i) {
              if (FilteredContainsPattern(view.subgraphs[i].subgraph,
                                          p.graph(), index.match_)) {
                bitops::SetBit(bits.data(), i);
              }
            }
            coverage.emplace(label, std::move(bits));
          }
          // Frozen once: export/import and every copy of this index share
          // these words by pointer from here on.
          post.subgraph_bits =
              std::make_shared<const CoverageBits>(std::move(coverage));
          if (index.database_indexed_) {
            for (int i = 0; i < db->size(); ++i) {
              if (FilteredContainsPattern(db->graph(i), p.graph(),
                                          index.match_)) {
                post.db_graphs.push_back(i);
              }
            }
          }
        }
      });

  for (auto& [code, slot] : code_slot) {
    index.postings_.emplace(code, std::move(postings[slot]));
  }
  return index;
}

PatternIndex PatternIndex::Build(const std::map<int, ExplanationView>& views,
                                 const GraphDatabase* db,
                                 const BuildOptions& options) {
  return Build(std::make_shared<const std::map<int, ExplanationView>>(views),
               db, options);
}

std::vector<StoredPostings> PatternIndex::ExportPostings() const {
  std::vector<StoredPostings> out;
  out.reserve(postings_.size());
  for (const auto& [code, post] : postings_) {
    StoredPostings stored;
    stored.code = code;
    stored.labels = post.labels;
    stored.tier_position = post.tier_position;
    stored.subgraph_bits = post.subgraph_bits;  // pointer copy, no words
    stored.db_graphs = post.db_graphs;
    out.push_back(std::move(stored));
  }
  std::sort(out.begin(), out.end(),
            [](const StoredPostings& a, const StoredPostings& b) {
              return a.code < b.code;
            });
  return out;
}

PatternIndex PatternIndex::FromStored(
    std::shared_ptr<const std::map<int, ExplanationView>> views,
    const GraphDatabase* db, const MatchOptions& match, bool database_indexed,
    const std::vector<StoredPostings>& postings) {
  PatternIndex index;
  index.views_ = std::move(views);
  index.db_ = db;
  index.match_ = match;
  // Snapshots may predate the database the service now runs against; a
  // missing database disables the precomputed db_graphs path exactly like
  // a scratch build with db == nullptr.
  index.database_indexed_ = database_indexed && db != nullptr;
  index.postings_.reserve(postings.size());
  for (const StoredPostings& stored : postings) {
    PatternPostings post;
    post.labels = stored.labels;
    post.tier_position = stored.tier_position;
    post.subgraph_bits = stored.subgraph_bits;  // pointer copy, no words
    post.db_graphs = stored.db_graphs;
    index.postings_.emplace(stored.code, std::move(post));
  }
  return index;
}

const std::map<int, ExplanationView>& PatternIndex::views() const {
  return views_ == nullptr ? kEmptyViews : *views_;
}

std::vector<int> PatternIndex::Labels() const {
  std::vector<int> out;
  out.reserve(views().size());
  for (const auto& [label, view] : views()) out.push_back(label);
  return out;
}

const std::vector<Pattern>& PatternIndex::PatternsForLabel(int label) const {
  auto it = views().find(label);
  return it == views().end() ? kEmptyPatterns : it->second.patterns;
}

const PatternPostings* PatternIndex::Find(const std::string& code) const {
  auto it = postings_.find(code);
  return it == postings_.end() ? nullptr : &it->second;
}

std::vector<int> PatternIndex::GraphsWithPattern(int label,
                                                 const Pattern& p) const {
  std::vector<int> out;
  auto it = views().find(label);
  if (it == views().end()) return out;
  const std::vector<ExplanationSubgraph>& subgraphs = it->second.subgraphs;
  const PatternPostings* post = Find(p.canonical_code());
  if (post != nullptr) {
    if (post->subgraph_bits) {
      auto bits = post->subgraph_bits->find(label);
      if (bits != post->subgraph_bits->end()) {
        // The indexed path: one ctz per ANSWER, not one shift per subgraph.
        bitops::ForEachSetBit(bits->second, [&](size_t i) {
          if (i < subgraphs.size()) out.push_back(subgraphs[i].graph_index);
        });
        return out;
      }
    }
    // Known code but no bitset for this label: the build computes bits for
    // every label, so this is an inconsistent snapshot. Say so loudly and
    // count it — then still answer correctly via the scan below.
    stats_->inconsistent_postings.fetch_add(1, std::memory_order_relaxed);
    GVEX_LOG(kError) << "pattern index posting for code "
                     << p.canonical_code() << " has no coverage bitset for"
                     << " label " << label
                     << " (inconsistent snapshot); scanning";
  } else {
    stats_->fallback_scans.fetch_add(1, std::memory_order_relaxed);
  }
  // Non-exact pattern (or inconsistent posting): filtered containment scan,
  // bit-identical to the legacy store's answer.
  for (const auto& s : subgraphs) {
    if (SubgraphContains(s.subgraph, p)) {
      out.push_back(s.graph_index);
    }
  }
  return out;
}

std::vector<int> PatternIndex::GraphsWithAllPatterns(
    int label, const std::vector<Pattern>& patterns) const {
  std::vector<int> out;
  auto it = views().find(label);
  if (it == views().end()) return out;
  const std::vector<ExplanationSubgraph>& subgraphs = it->second.subgraphs;
  const size_t n = subgraphs.size();

  // Accumulator starts at "all subgraphs" (tail bits masked off) and each
  // indexed pattern narrows it with one word-level AND — a k-pattern query
  // costs k ANDs plus one output walk, not k separate bit walks.
  std::vector<uint64_t> acc(bitops::WordsForBits(n), ~uint64_t{0});
  if (!acc.empty() && (n & 63) != 0) {
    acc.back() = (uint64_t{1} << (n & 63)) - 1;
  }

  std::vector<const Pattern*> scan_patterns;
  for (const Pattern& p : patterns) {
    const PatternPostings* post = Find(p.canonical_code());
    if (post != nullptr && post->subgraph_bits) {
      auto bits = post->subgraph_bits->find(label);
      if (bits != post->subgraph_bits->end()) {
        bitops::AndInPlace(&acc, bits->second);
        continue;
      }
    }
    if (post != nullptr) {
      stats_->inconsistent_postings.fetch_add(1, std::memory_order_relaxed);
      GVEX_LOG(kError) << "pattern index posting for code "
                       << p.canonical_code() << " has no coverage bitset"
                       << " for label " << label
                       << " (inconsistent snapshot); scanning";
    } else {
      stats_->fallback_scans.fetch_add(1, std::memory_order_relaxed);
    }
    scan_patterns.push_back(&p);
  }
  if (bitops::AllZero(acc)) return out;

  // Unknown-code patterns only ever check subgraphs still alive in the
  // accumulator.
  bitops::ForEachSetBit(acc, [&](size_t i) {
    if (i >= n) return;
    for (const Pattern* p : scan_patterns) {
      if (!SubgraphContains(subgraphs[i].subgraph, *p)) return;
    }
    out.push_back(subgraphs[i].graph_index);
  });
  return out;
}

std::vector<int> PatternIndex::LabelsOfPattern(const Pattern& p) const {
  // Tier membership is exact canonical-code equality (Pattern::IsomorphicTo),
  // so an unknown code has no carriers — no fallback needed.
  const PatternPostings* post = Find(p.canonical_code());
  return post == nullptr ? std::vector<int>() : post->labels;
}

std::vector<int> PatternIndex::DatabaseGraphsWithPattern(const Pattern& p,
                                                         int label) const {
  std::vector<int> out;
  if (db_ == nullptr) return out;
  const PatternPostings* post =
      database_indexed_ ? Find(p.canonical_code()) : nullptr;
  if (post != nullptr) {
    if (label < 0) return post->db_graphs;
    for (int i : post->db_graphs) {
      const int l = db_->has_predictions() ? db_->predicted_label(i)
                                           : db_->true_label(i);
      if (l == label) out.push_back(i);
    }
    return out;
  }
  if (database_indexed_) {
    stats_->fallback_scans.fetch_add(1, std::memory_order_relaxed);
  }
  for (int i = 0; i < db_->size(); ++i) {
    if (label >= 0) {
      const int l = db_->has_predictions() ? db_->predicted_label(i)
                                           : db_->true_label(i);
      if (l != label) continue;
    }
    if (SubgraphContains(db_->graph(i), p)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<Pattern> PatternIndex::DiscriminativePatterns(int label) const {
  std::vector<Pattern> out;
  auto it = views().find(label);
  if (it == views().end()) return out;
  for (const Pattern& p : it->second.patterns) {
    // Tier patterns are indexed whenever the index was built from the same
    // view snapshot it queries — but a warm-started index serves whatever
    // postings its snapshot carried, and an admission race could hand it a
    // tier it never indexed. Missing postings (or missing per-label
    // bitsets) are counted, logged, and answered by a filtered scan; never
    // dereferenced blind.
    const PatternPostings* post = Find(p.canonical_code());
    if (post == nullptr) {
      stats_->inconsistent_postings.fetch_add(1, std::memory_order_relaxed);
      GVEX_LOG(kError) << "tier pattern of label " << label
                       << " has no posting (inconsistent snapshot);"
                       << " scanning";
    }
    bool found_elsewhere = false;
    for (const auto& [other_label, other_view] : views()) {
      if (other_label == label) continue;
      if (post != nullptr && post->subgraph_bits) {
        auto bits = post->subgraph_bits->find(other_label);
        if (bits != post->subgraph_bits->end()) {
          if (!bitops::AllZero(bits->second)) {
            found_elsewhere = true;
            break;
          }
          continue;
        }
        stats_->inconsistent_postings.fetch_add(1,
                                                std::memory_order_relaxed);
        GVEX_LOG(kError) << "pattern index posting for code "
                         << p.canonical_code()
                         << " has no coverage bitset for label "
                         << other_label
                         << " (inconsistent snapshot); scanning";
      }
      for (const ExplanationSubgraph& s : other_view.subgraphs) {
        if (SubgraphContains(s.subgraph, p)) {
          found_elsewhere = true;
          break;
        }
      }
      if (found_elsewhere) break;
    }
    if (!found_elsewhere) out.push_back(p);
  }
  return out;
}

}  // namespace gvex
