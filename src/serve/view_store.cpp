#include "serve/view_store.h"

#include <algorithm>
#include <utility>

namespace gvex {

namespace {
const std::vector<Pattern> kEmptyPatterns;
}  // namespace

ViewStore::ViewStore(const GraphDatabase* db, ViewStoreOptions options)
    : db_(db), options_(options) {
  match_options_.semantics = MatchSemantics::kInduced;
}

void ViewStore::AddView(ExplanationView view) {
  views_[view.label] = std::move(view);
  index_dirty_ = true;
}

const PatternIndex& ViewStore::EnsureIndex() const {
  // Lazy rebuild: N registrations followed by the first query cost one
  // build, not N. AddView is externally synchronized (class contract), so
  // the mutex only has to order the rebuild against concurrent queries.
  std::lock_guard<std::mutex> lock(index_mu_);
  if (index_dirty_) {
    PatternIndex::BuildOptions build;
    build.match = match_options_;
    build.num_threads = options_.build_threads;
    // Even a view-less index must know the database so non-exact
    // DatabaseGraphsWithPattern queries can fall back to the legacy scan.
    index_ = PatternIndex::Build(views_, db_, build);
    index_dirty_ = false;
  }
  return index_;
}

const PatternIndex& ViewStore::index() const { return EnsureIndex(); }

std::vector<int> ViewStore::Labels() const {
  std::vector<int> out;
  out.reserve(views_.size());
  for (const auto& [label, view] : views_) out.push_back(label);
  return out;
}

const std::vector<Pattern>& ViewStore::PatternsForLabel(int label) const {
  auto it = views_.find(label);
  return it == views_.end() ? kEmptyPatterns : it->second.patterns;
}

std::vector<int> ViewStore::GraphsWithPattern(int label,
                                              const Pattern& p) const {
  if (options_.use_index) return EnsureIndex().GraphsWithPattern(label, p);
  std::vector<int> out;
  auto it = views_.find(label);
  if (it == views_.end()) return out;
  for (const auto& s : it->second.subgraphs) {
    if (ContainsPattern(s.subgraph, p.graph(), match_options_)) {
      out.push_back(s.graph_index);
    }
  }
  return out;
}

std::vector<int> ViewStore::LabelsOfPattern(const Pattern& p) const {
  if (options_.use_index) return EnsureIndex().LabelsOfPattern(p);
  std::vector<int> out;
  for (const auto& [label, view] : views_) {
    for (const Pattern& q : view.patterns) {
      if (q.IsomorphicTo(p)) {
        out.push_back(label);
        break;
      }
    }
  }
  return out;
}

std::vector<int> ViewStore::DatabaseGraphsWithPattern(const Pattern& p,
                                                      int label) const {
  if (options_.use_index) {
    return EnsureIndex().DatabaseGraphsWithPattern(p, label);
  }
  std::vector<int> out;
  if (db_ == nullptr) return out;
  for (int i = 0; i < db_->size(); ++i) {
    if (label >= 0) {
      const int l = db_->has_predictions() ? db_->predicted_label(i)
                                           : db_->true_label(i);
      if (l != label) continue;
    }
    if (ContainsPattern(db_->graph(i), p.graph(), match_options_)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<Pattern> ViewStore::DiscriminativePatterns(int label) const {
  if (options_.use_index) return EnsureIndex().DiscriminativePatterns(label);
  std::vector<Pattern> out;
  auto it = views_.find(label);
  if (it == views_.end()) return out;
  for (const Pattern& p : it->second.patterns) {
    bool found_elsewhere = false;
    for (const auto& [other_label, other_view] : views_) {
      if (other_label == label) continue;
      for (const auto& s : other_view.subgraphs) {
        if (ContainsPattern(s.subgraph, p.graph(), match_options_)) {
          found_elsewhere = true;
          break;
        }
      }
      if (found_elsewhere) break;
    }
    if (!found_elsewhere) out.push_back(p);
  }
  return out;
}

}  // namespace gvex
