// Table/CSV emitters used by the benchmark harness to print paper-style
// rows and optionally persist them for plotting.

#ifndef GVEX_UTIL_CSV_H_
#define GVEX_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace gvex {

/// Accumulates rows of string cells and renders either an aligned text table
/// (for terminal output, matching how the paper reports series) or CSV.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; pads/truncates to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows.
  size_t num_rows() const { return rows_.size(); }

  /// Renders an aligned, pipe-separated text table.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote get quoted).
  std::string ToCsv() const;

  /// Writes the CSV rendering to `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` decimals (shared helper for bench output).
std::string FmtDouble(double v, int prec = 4);

}  // namespace gvex

#endif  // GVEX_UTIL_CSV_H_
