// Minimal leveled logger writing to stderr. Thread-safe at line granularity.

#ifndef GVEX_UTIL_LOGGING_H_
#define GVEX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace gvex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that is emitted. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace gvex

#define GVEX_LOG_ENABLED(level) \
  (static_cast<int>(level) >= static_cast<int>(::gvex::GetLogLevel()))

#define GVEX_LOG(level)                                             \
  !GVEX_LOG_ENABLED(::gvex::LogLevel::level)                        \
      ? (void)0                                                     \
      : ::gvex::internal::LogMessageVoidify() &                     \
            ::gvex::internal::LogMessage(::gvex::LogLevel::level,   \
                                         __FILE__, __LINE__)

#define GVEX_CHECK(cond)                                                   \
  if (!(cond))                                                             \
  ::gvex::internal::LogMessage(::gvex::LogLevel::kError, __FILE__,         \
                               __LINE__)                                   \
      << "Check failed: " #cond " "

#endif  // GVEX_UTIL_LOGGING_H_
