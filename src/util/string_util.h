// Small string helpers shared by serialization and the bench table printers.

#ifndef GVEX_UTIL_STRING_UTIL_H_
#define GVEX_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gvex {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Splits on arbitrary whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(const std::string& s);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

// Exception-free whole-string numeric parsing for line-oriented formats
// fed by untrusted byte streams (sockets, fuzzers): the std::stoi family
// throws on garbage, which would escape the Status error model as a
// crash. All three accept only when the ENTIRE string parses ("1x" or ""
// fail) and the value fits the target type.

/// Parses a base-10 integer into *out; false on garbage/partial/overflow.
bool ParseInt(const std::string& s, int* out);

/// Parses a double into *out; false on garbage/partial/overflow.
bool ParseDouble(const std::string& s, double* out);

/// Parses a float into *out; false on garbage/partial/overflow.
bool ParseFloat(const std::string& s, float* out);

/// Parses a base-10 unsigned 64-bit integer into *out; false on
/// garbage/partial/overflow ("-1" fails — no negative wraparound).
bool ParseUint64(const std::string& s, uint64_t* out);

/// Lowercase hex encoding of arbitrary bytes (the replication protocol
/// ships binary chunks as one hex token per line).
std::string HexEncode(const std::string& bytes);

/// Inverse of HexEncode; false on odd length or non-hex characters.
bool HexDecode(const std::string& hex, std::string* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

}  // namespace gvex

#endif  // GVEX_UTIL_STRING_UTIL_H_
