// Fixed-size worker pool used for the parallel per-graph view generation
// scheme of the paper (§A.7 "Parallel Implementation").

#ifndef GVEX_UTIL_THREAD_POOL_H_
#define GVEX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gvex {

/// A minimal task queue + worker threads. Tasks are void(); results are
/// communicated through captured state. `Wait` blocks until the queue drains
/// and all in-flight tasks finish.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Convenience: runs `fn(i)` for i in [0, n) across `num_threads` workers
  /// and waits for completion.
  static void ParallelFor(int num_threads, int n,
                          const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signalled when work arrives / shutdown
  std::condition_variable done_cv_;   // signalled when a task completes
  int in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace gvex

#endif  // GVEX_UTIL_THREAD_POOL_H_
