// Fixed-size worker pool used for the parallel per-graph view generation
// scheme of the paper (§A.7 "Parallel Implementation").

#ifndef GVEX_UTIL_THREAD_POOL_H_
#define GVEX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gvex {

/// One contiguous batch of a [0, n) index range, produced by
/// `ThreadPool::MakeShards`. Shards are the unit of work for the sharded
/// view-generation scheme: each shard is processed sequentially by one
/// worker into a shard-local accumulator, and accumulators are merged in
/// `index` order at the barrier, so results are independent of which worker
/// ran which shard.
struct Shard {
  int index = 0;  ///< Position in the deterministic shard order.
  int begin = 0;  ///< First index covered (inclusive).
  int end = 0;    ///< One past the last index covered.

  int size() const { return end - begin; }
};

/// A minimal task queue + worker threads. Tasks are void(); results are
/// communicated through captured state. `Wait` blocks until the queue drains
/// and all in-flight tasks finish.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Partitions [0, n) into at most `num_shards` contiguous, near-equal,
  /// non-empty batches. The partition is a pure function of (num_shards, n),
  /// so callers can pre-size per-shard accumulators with the same call and
  /// rely on the layout. Returns min(num_shards, n) shards (none when
  /// n <= 0); sizes differ by at most one.
  static std::vector<Shard> MakeShards(int num_shards, int n);

  /// Sharded submit: enqueues `fn(shard)` for every shard of
  /// `MakeShards(num_shards, n)` onto this pool and blocks until all of them
  /// finish (the merge barrier). Workers pull shards dynamically, so using
  /// more shards than workers (batching) load-balances uneven per-index
  /// costs while keeping the shard layout — and therefore any shard-indexed
  /// accumulator merge — deterministic.
  void RunSharded(int num_shards, int n,
                  const std::function<void(const Shard&)>& fn);

  /// Convenience: runs `fn(i)` for i in [0, n) across `num_threads` workers
  /// and waits for completion.
  static void ParallelFor(int num_threads, int n,
                          const std::function<void(int)>& fn);

  /// Convenience wrapper over `RunSharded` that runs the shards inline (in
  /// shard order) when `num_threads` <= 1 and otherwise on a transient pool
  /// of `num_threads` workers. `num_shards` <= 0 defaults to one shard per
  /// worker.
  static void ParallelForShards(int num_threads, int num_shards, int n,
                                const std::function<void(const Shard&)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signalled when work arrives / shutdown
  std::condition_variable done_cv_;   // signalled when a task completes
  int in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace gvex

#endif  // GVEX_UTIL_THREAD_POOL_H_
