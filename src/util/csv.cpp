#include "util/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace gvex {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToText() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}
}  // namespace

std::string Table::ToCsv() const {
  std::string out;
  std::vector<std::string> escaped;
  escaped.reserve(headers_.size());
  for (const auto& h : headers_) escaped.push_back(CsvEscape(h));
  out += Join(escaped, ",") + "\n";
  for (const auto& row : rows_) {
    escaped.clear();
    for (const auto& cell : row) escaped.push_back(CsvEscape(cell));
    out += Join(escaped, ",") + "\n";
  }
  return out;
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f.good()) return Status::IOError("cannot open " + path);
  f << ToCsv();
  if (!f.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

std::string FmtDouble(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return std::string(buf);
}

}  // namespace gvex
