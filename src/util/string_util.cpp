#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace gvex {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ParseInt(const std::string& s, int* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;  // strtol would skip leading whitespace; reject it
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (value < INT_MIN || value > INT_MAX) return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

bool ParseFloat(const std::string& s, float* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const float value = std::strtof(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0])) ||
      s[0] == '-') {
    return false;  // strtoull silently wraps negatives; reject them
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

std::string HexEncode(const std::string& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

bool HexDecode(const std::string& hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string decoded;
  decoded.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    decoded.push_back(static_cast<char>((hi << 4) | lo));
  }
  *out = std::move(decoded);
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace gvex
