#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace gvex {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ParseInt(const std::string& s, int* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;  // strtol would skip leading whitespace; reject it
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (value < INT_MIN || value > INT_MAX) return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

bool ParseFloat(const std::string& s, float* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const float value = std::strtof(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace gvex
