// Wall-clock stopwatch used by the benchmark harness and the streaming
// algorithm's anytime reporting.

#ifndef GVEX_UTIL_TIMER_H_
#define GVEX_UTIL_TIMER_H_

#include <chrono>

namespace gvex {

/// Starts timing at construction; `ElapsedMs`/`ElapsedSec` read without
/// stopping; `Restart` resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSec() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gvex

#endif  // GVEX_UTIL_TIMER_H_
