// Status / Result error model, following the RocksDB/Arrow idiom: library
// functions that can fail return a Status (or Result<T> carrying a value),
// never throw across the library boundary.

#ifndef GVEX_UTIL_STATUS_H_
#define GVEX_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace gvex {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIOError,
  kAborted,
};

/// A lightweight success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders e.g. "InvalidArgument: node id 7 out of bounds".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value-or-error: holds T on success, a non-OK Status on failure.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)), has_value_(true) {}

  /// Implicit from a non-OK status: failure. Asserts the status is not OK.
  Result(Status status) : status_(std::move(status)), has_value_(false) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Must only be called when ok().
  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return has_value_ ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_ = T();
  bool has_value_;
};

/// Propagates a non-OK status to the caller (for use in Status-returning fns).
#define GVEX_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::gvex::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

/// Unwraps a Result into `lhs`, propagating errors.
#define GVEX_ASSIGN_OR_RETURN(lhs, expr)       \
  auto GVEX_CONCAT_(result_, __LINE__) = (expr); \
  if (!GVEX_CONCAT_(result_, __LINE__).ok())     \
    return GVEX_CONCAT_(result_, __LINE__).status(); \
  lhs = std::move(GVEX_CONCAT_(result_, __LINE__)).value()

#define GVEX_CONCAT_IMPL_(a, b) a##b
#define GVEX_CONCAT_(a, b) GVEX_CONCAT_IMPL_(a, b)

}  // namespace gvex

#endif  // GVEX_UTIL_STATUS_H_
