#include "util/thread_pool.h"

#include <cassert>

namespace gvex {

ThreadPool::ThreadPool(int num_threads) {
  assert(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

std::vector<Shard> ThreadPool::MakeShards(int num_shards, int n) {
  std::vector<Shard> shards;
  if (n <= 0 || num_shards <= 0) return shards;
  const int count = num_shards < n ? num_shards : n;
  shards.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    Shard shard;
    shard.index = s;
    // Spread the remainder over the leading shards: sizes differ by <= 1.
    shard.begin = static_cast<int>(static_cast<int64_t>(s) * n / count);
    shard.end = static_cast<int>(static_cast<int64_t>(s + 1) * n / count);
    shards.push_back(shard);
  }
  return shards;
}

void ThreadPool::RunSharded(int num_shards, int n,
                            const std::function<void(const Shard&)>& fn) {
  const std::vector<Shard> shards = MakeShards(num_shards, n);
  for (const Shard& shard : shards) {
    Submit([&fn, shard] { fn(shard); });
  }
  Wait();
}

void ThreadPool::ParallelFor(int num_threads, int n,
                             const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (num_threads <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(num_threads);
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

void ThreadPool::ParallelForShards(int num_threads, int num_shards, int n,
                                   const std::function<void(const Shard&)>& fn) {
  if (n <= 0) return;
  if (num_shards <= 0) num_shards = num_threads > 1 ? num_threads : 1;
  if (num_threads <= 1) {
    for (const Shard& shard : MakeShards(num_shards, n)) fn(shard);
    return;
  }
  ThreadPool pool(num_threads);
  pool.RunSharded(num_shards, n, fn);
}

}  // namespace gvex
