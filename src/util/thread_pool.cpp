#include "util/thread_pool.h"

#include <cassert>

namespace gvex {

ThreadPool::ThreadPool(int num_threads) {
  assert(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int num_threads, int n,
                             const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (num_threads <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(num_threads);
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace gvex
