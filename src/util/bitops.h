// Word-level bitset kernels for the serving read path. Coverage bitsets
// (pattern_index.h) are dense arrays of 64-bit words; the hot queries are
// AND / AND-NOT / emptiness / popcount / iterate-set-bits over them. This
// header gives each of those a kernel that walks WORDS (and, when the
// compiler targets AVX2, 256-bit lanes), never individual bits.
//
// Dispatch is selected at BUILD time: when the translation unit is
// compiled with AVX2 enabled (e.g. -mavx2 / -march=native, detected via
// __AVX2__), the wide kernels are used; otherwise the portable scalar
// loops compile in. Both paths produce identical results — the scalar
// implementations live in bitops::scalar and stay callable from any build,
// so tests can pin the dispatched kernels against them.
//
// All kernels take (pointer, word count); the std::vector<uint64_t>
// convenience overloads cover the common case. Set-bit iteration uses ctz
// (one iteration per SET bit, not per bit), which is what turns sparse
// posting walks from O(bits) into O(answers).

#ifndef GVEX_UTIL_BITOPS_H_
#define GVEX_UTIL_BITOPS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__AVX2__) && !defined(GVEX_BITOPS_FORCE_SCALAR)
#define GVEX_BITOPS_AVX2 1
#include <immintrin.h>
#endif

namespace gvex {
namespace bitops {

/// Words needed to hold `bits` bits.
inline size_t WordsForBits(size_t bits) { return (bits + 63) / 64; }

/// Single-bit accessors (the only per-bit helpers; everything else walks
/// words).
inline bool TestBit(const uint64_t* words, size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}
inline void SetBit(uint64_t* words, size_t i) {
  words[i >> 6] |= uint64_t{1} << (i & 63);
}

// --- Portable scalar kernels (always available; the reference the
// dispatched kernels are tested against). ---
namespace scalar {

inline bool AllZero(const uint64_t* w, size_t n) {
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) acc |= w[i];
  return acc == 0;
}

inline bool Intersects(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

inline void AndInPlace(uint64_t* acc, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] &= b[i];
}

inline void AndNotInPlace(uint64_t* acc, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) acc[i] &= ~b[i];
}

inline size_t Popcount(const uint64_t* w, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

}  // namespace scalar

// --- Dispatched kernels: AVX2 when compiled in, scalar otherwise. ---

/// True when every word is zero.
inline bool AllZero(const uint64_t* w, size_t n) {
#ifdef GVEX_BITOPS_AVX2
  size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_or_si256(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i)));
  }
  if (!_mm256_testz_si256(acc, acc)) return false;
  return scalar::AllZero(w + i, n - i);
#else
  return scalar::AllZero(w, n);
#endif
}

/// True when a & b has any set bit (no output written).
inline bool Intersects(const uint64_t* a, const uint64_t* b, size_t n) {
#ifdef GVEX_BITOPS_AVX2
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  return scalar::Intersects(a + i, b + i, n - i);
#else
  return scalar::Intersects(a, b, n);
#endif
}

/// acc &= b, word-wise.
inline void AndInPlace(uint64_t* acc, const uint64_t* b, size_t n) {
#ifdef GVEX_BITOPS_AVX2
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_and_si256(va, vb));
  }
  scalar::AndInPlace(acc + i, b + i, n - i);
#else
  scalar::AndInPlace(acc, b, n);
#endif
}

/// acc &= ~b, word-wise.
inline void AndNotInPlace(uint64_t* acc, const uint64_t* b, size_t n) {
#ifdef GVEX_BITOPS_AVX2
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // _mm256_andnot_si256 computes (~first) & second.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_andnot_si256(vb, va));
  }
  scalar::AndNotInPlace(acc + i, b + i, n - i);
#else
  scalar::AndNotInPlace(acc, b, n);
#endif
}

/// Number of set bits.
inline size_t Popcount(const uint64_t* w, size_t n) {
  // Scalar popcountll compiles to one POPCNT per word on every target we
  // build for; a Harley-Seal AVX2 version is not worth the complexity at
  // posting sizes (a few words per label).
  return scalar::Popcount(w, n);
}

/// Calls fn(index) for every set bit, ascending — one ctz per SET bit.
template <typename Fn>
inline void ForEachSetBit(const uint64_t* words, size_t n, Fn&& fn) {
  for (size_t wi = 0; wi < n; ++wi) {
    uint64_t w = words[wi];
    while (w != 0) {
      const int b = __builtin_ctzll(w);
      fn(static_cast<size_t>((wi << 6) + static_cast<size_t>(b)));
      w &= w - 1;  // clear the lowest set bit
    }
  }
}

// --- std::vector<uint64_t> conveniences. Sizes must match where two
// bitsets meet (callers index bitsets of one universe). ---

inline bool AllZero(const std::vector<uint64_t>& w) {
  return AllZero(w.data(), w.size());
}
inline bool Intersects(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  return Intersects(a.data(), b.data(), a.size() < b.size() ? a.size()
                                                            : b.size());
}
inline void AndInPlace(std::vector<uint64_t>* acc,
                       const std::vector<uint64_t>& b) {
  AndInPlace(acc->data(), b.data(),
             acc->size() < b.size() ? acc->size() : b.size());
}
inline size_t Popcount(const std::vector<uint64_t>& w) {
  return Popcount(w.data(), w.size());
}
template <typename Fn>
inline void ForEachSetBit(const std::vector<uint64_t>& w, Fn&& fn) {
  ForEachSetBit(w.data(), w.size(), static_cast<Fn&&>(fn));
}

}  // namespace bitops
}  // namespace gvex

#endif  // GVEX_UTIL_BITOPS_H_
