#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace gvex {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(NextUint(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  // Box-Muller; discards the second value for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::SampleWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return weights.size() - 1;
  double x = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k <= n);
  std::vector<int> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  Shuffle(&pool);
  pool.resize(k);
  return pool;
}

}  // namespace gvex
