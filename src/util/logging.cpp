#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gvex {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    default:
      return "?";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal
}  // namespace gvex
