// Deterministic pseudo-random number generation. All stochastic components
// (dataset generators, weight init, samplers) take an explicit Rng so that
// experiments are reproducible from a single seed.

#ifndef GVEX_UTIL_RNG_H_
#define GVEX_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gvex {

/// xoshiro256** generator: fast, high-quality, and stable across platforms
/// (unlike std::mt19937 distributions, whose outputs are unspecified).
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same stream everywhere.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples an index according to non-negative weights (linear scan).
  /// Returns weights.size()-1 on degenerate all-zero input.
  size_t SampleWeighted(const std::vector<double>& weights);

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t s_[4];
};

}  // namespace gvex

#endif  // GVEX_UTIL_RNG_H_
