// Quickstart: the full GVEX workflow in one file.
//   1. Generate a molecule database (MUT-like) and train a GCN classifier.
//   2. Generate an explanation view for the "mutagen" label with ApproxGVEX.
//   3. Verify the view (C1-C3), inspect quality metrics, and query it.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "data/datasets.h"
#include "data/motifs.h"
#include "explain/approx_gvex.h"
#include "explain/metrics.h"
#include "explain/verify.h"
#include "explain/view_query.h"
#include "gnn/trainer.h"

using namespace gvex;

int main() {
  // 1. Data + classifier. ---------------------------------------------------
  std::printf("Generating MUT-like molecule database...\n");
  DatasetScale scale;
  scale.num_graphs = 60;
  GraphDatabase db = MakeDataset(DatasetId::kMutagenicity, scale);

  GcnConfig gcn;
  gcn.input_dim = SpecFor(DatasetId::kMutagenicity).feature_dim;
  gcn.hidden_dim = 32;
  gcn.num_layers = 3;  // the paper's architecture
  gcn.num_classes = 2;
  Rng rng(7);
  GcnModel model(gcn, &rng);

  std::vector<int> all;
  for (int i = 0; i < db.size(); ++i) all.push_back(i);
  TrainConfig tc;
  tc.epochs = 100;
  auto report = TrainGcn(&model, db, all, tc);
  if (!report.ok()) {
    std::printf("training failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("GCN trained: accuracy %.2f\n", report.value().train_accuracy);
  (void)AssignPredictedLabels(model, &db);

  // 2. Explanation view for the mutagen class. ------------------------------
  Configuration config;
  config.theta = 0.08f;              // influence threshold (Eq. 5)
  config.r = 0.25f;                  // diversity radius (Eq. 6)
  config.gamma = 0.5f;               // influence/diversity trade-off
  config.default_bound = {2, 10};    // coverage constraint [b_l, u_l]
  config.miner.max_pattern_nodes = 3;

  const int kMutagen = 1;
  ApproxGvex gvex(&model, config);
  auto view = gvex.GenerateView(db, kMutagen);
  if (!view.ok()) {
    std::printf("view generation failed: %s\n",
                view.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", view.value().Summary().c_str());
  std::printf("Patterns (higher tier):\n");
  for (const Pattern& p : view.value().patterns) {
    std::printf("  %s\n", RenderPattern(p, AtomVocab()).c_str());
  }

  // 3. Verification, metrics, querying. -------------------------------------
  ViewVerification check = VerifyView(model, db, view.value(), config);
  std::printf("\nView verification: graph_view=%d explanation_view=%d "
              "properly_covers=%d\n",
              check.is_graph_view, check.is_explanation_view,
              check.properly_covers);

  std::printf("Fidelity+ = %.3f   Fidelity- = %.3f   Sparsity = %.3f   "
              "Compression = %.3f\n",
              FidelityPlus(model, db, view.value().subgraphs),
              FidelityMinus(model, db, view.value().subgraphs),
              Sparsity(db, view.value().subgraphs),
              Compression(view.value()));

  ViewStore store(&db);
  store.AddView(view.value());
  const auto& patterns = store.PatternsForLabel(kMutagen);
  if (!patterns.empty()) {
    auto graphs = store.GraphsWithPattern(kMutagen, patterns.front());
    std::printf("\nQuery: graphs whose explanation contains pattern #0 -> "
                "%zu graphs\n",
                graphs.size());
  }
  std::printf("\nDone.\n");
  return 0;
}
