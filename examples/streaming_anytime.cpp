// StreamGVEX anytime demo: processes one graph's node stream and snapshots
// the maintained explanation view after every batch of nodes — the
// interrupt-and-inspect workflow §5 motivates.

#include <cstdio>

#include "data/datasets.h"
#include "data/motifs.h"
#include "explain/stream_gvex.h"
#include "gnn/trainer.h"

using namespace gvex;

int main() {
  std::printf("=== StreamGVEX anytime explanation maintenance ===\n\n");
  DatasetScale scale;
  scale.num_graphs = 40;
  GraphDatabase db = MakeDataset(DatasetId::kMutagenicity, scale);

  GcnConfig gcn;
  gcn.input_dim = kNumAtomTypes;
  gcn.hidden_dim = 32;
  gcn.num_classes = 2;
  Rng rng(19);
  GcnModel model(gcn, &rng);
  std::vector<int> all;
  for (int i = 0; i < db.size(); ++i) all.push_back(i);
  TrainConfig tc;
  tc.epochs = 100;
  (void)TrainGcn(&model, db, all, tc);
  (void)AssignPredictedLabels(model, &db);

  Configuration config;
  config.theta = 0.08f;
  config.r = 0.25f;
  config.default_bound = {2, 8};
  config.miner.max_pattern_nodes = 3;

  const int kMutagen = 1;
  const int gi = db.LabelGroup(kMutagen).front();
  const Graph& g = db.graph(gi);
  std::printf("Streaming the %d nodes of mutagen graph #%d in batches:\n\n",
              g.num_nodes(), gi);

  StreamGraphState state(&model, &g, gi, kMutagen, &config);
  const int batch = std::max(1, g.num_nodes() / 5);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    state.ProcessNode(v);
    if ((v + 1) % batch == 0 || v + 1 == g.num_nodes()) {
      auto snap = state.Snapshot();
      if (snap.ok()) {
        std::printf("  after %2d/%d nodes: |V_S|=%zu, f=%.4f, patterns=%zu, "
                    "counterfactual=%d\n",
                    v + 1, g.num_nodes(), snap.value().nodes.size(),
                    snap.value().explainability, state.patterns().size(),
                    snap.value().counterfactual);
      } else {
        std::printf("  after %2d/%d nodes: (no selection yet)\n", v + 1,
                    g.num_nodes());
      }
    }
  }
  state.Finalize();
  auto final_snap = state.Snapshot();
  if (final_snap.ok()) {
    std::printf("\nFinal explanation subgraph atoms: ");
    for (NodeId v : final_snap.value().nodes) {
      std::printf("%s ", TypeName(AtomVocab(), g.node_type(v)).c_str());
    }
    std::printf("\nFinal pattern tier (%zu patterns):\n",
                state.patterns().size());
    for (const Pattern& p : state.patterns()) {
      std::printf("  %s\n", RenderPattern(p, AtomVocab()).c_str());
    }
  }
  return 0;
}
