// Node-classification support (Table 1: GVEX handles GC and NC): a product
// co-purchase network with per-node categories is converted into ego-network
// graph classification (the paper's PRODUCTS protocol, §6.2), a GCN is
// trained on it, and explanation views are generated per category.

#include <cstdio>

#include "data/ego_networks.h"
#include "explain/approx_gvex.h"
#include "explain/metrics.h"
#include "gnn/trainer.h"
#include "util/rng.h"

using namespace gvex;

namespace {

// Builds one large co-purchase graph with 3 category communities.
Graph MakeCoPurchaseNetwork(std::vector<int>* labels, int per_category = 60) {
  Graph g;
  Rng rng(404);
  const int categories = 3;
  labels->clear();
  // Dense intra-category co-purchases.
  for (int c = 0; c < categories; ++c) {
    const int base = c * per_category;
    for (int i = 0; i < per_category; ++i) {
      g.AddNode(c);
      labels->push_back(c);
      if (i >= 1) {
        const int links = static_cast<int>(rng.NextInt(1, 3));
        for (int l = 0; l < links; ++l) {
          NodeId t = base + static_cast<NodeId>(
                                rng.NextUint(static_cast<uint64_t>(i)));
          (void)g.AddEdge(base + i, t);
        }
      }
    }
  }
  // Sparse cross-category purchases.
  for (int k = 0; k < per_category / 2; ++k) {
    NodeId u = static_cast<NodeId>(
        rng.NextUint(static_cast<uint64_t>(g.num_nodes())));
    NodeId v = static_cast<NodeId>(
        rng.NextUint(static_cast<uint64_t>(g.num_nodes())));
    if (u != v) (void)g.AddEdge(u, v);
  }
  (void)g.SetOneHotFeaturesFromTypes(categories);
  return g;
}

}  // namespace

int main() {
  std::printf("=== Node classification via ego networks (PRODUCTS protocol) "
              "===\n\n");
  std::vector<int> node_labels;
  Graph network = MakeCoPurchaseNetwork(&node_labels);
  std::printf("Co-purchase network: %d products, %d edges, 3 categories\n",
              network.num_nodes(), network.num_edges());

  EgoNetworkOptions ego_opt;
  ego_opt.hops = 2;
  ego_opt.max_networks = 60;
  ego_opt.max_nodes_per_ego = 40;
  auto db_result = BuildEgoNetworkDatabase(network, node_labels, ego_opt);
  if (!db_result.ok()) {
    std::printf("ego extraction failed: %s\n",
                db_result.status().ToString().c_str());
    return 1;
  }
  GraphDatabase db = std::move(db_result).value();
  auto stats = db.ComputeStats();
  std::printf("Ego-network database: %d subgraphs, avg %.1f nodes\n\n",
              stats.num_graphs, stats.avg_nodes);

  GcnConfig cfg;
  cfg.input_dim = 3;
  cfg.hidden_dim = 32;
  cfg.num_classes = 3;
  Rng rng(17);
  GcnModel model(cfg, &rng);
  std::vector<int> all;
  for (int i = 0; i < db.size(); ++i) all.push_back(i);
  TrainConfig tc;
  tc.epochs = 120;
  auto report = TrainGcn(&model, db, all, tc);
  std::printf("GCN (node-classifier surrogate) train accuracy: %.2f\n\n",
              report.ok() ? report.value().train_accuracy : 0.0f);
  (void)AssignPredictedLabels(model, &db);

  Configuration config;
  config.theta = 0.05f;
  config.r = 0.3f;
  config.default_bound = {2, 8};
  config.miner.max_pattern_nodes = 3;
  ApproxGvex gvex(&model, config);
  for (int category : db.DistinctLabels()) {
    auto view = gvex.GenerateView(db, category);
    if (!view.ok()) {
      std::printf("category %d: %s\n", category,
                  view.status().ToString().c_str());
      continue;
    }
    std::printf("category %d: %s\n  Fidelity+ %.3f, Sparsity %.3f\n",
                category, view.value().Summary().c_str(),
                FidelityPlus(model, db, view.value().subgraphs),
                Sparsity(db, view.value().subgraphs));
  }
  return 0;
}
