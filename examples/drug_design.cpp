// Case study 1 (Fig. 10): GNN-based drug design. Compares the explanation
// subgraphs different explainers identify for one mutagen, and shows that
// GVEX's two-tier view isolates the real toxicophore (the nitro group NO2)
// as a queryable pattern, answering "which toxicophores occur in mutagens?".

#include <cstdio>

#include "baselines/gnn_explainer.h"
#include "baselines/subgraphx.h"
#include "baselines/xgnn.h"
#include "data/datasets.h"
#include "data/motifs.h"
#include "explain/approx_gvex.h"
#include "explain/view_query.h"
#include "gnn/trainer.h"
#include "pattern/gspan.h"

using namespace gvex;

namespace {

void DescribeExplanation(const char* method, const Graph& g,
                         const ExplanationSubgraph& ex) {
  std::printf("%-14s selects %2zu atoms: ", method, ex.nodes.size());
  for (NodeId v : ex.nodes) {
    std::printf("%s ", TypeName(AtomVocab(), g.node_type(v)).c_str());
  }
  std::printf(" (consistent=%d counterfactual=%d)\n", ex.consistent,
              ex.counterfactual);
}

Pattern NitroPattern() {
  Graph g;
  NodeId n = g.AddNode(kNitrogen);
  (void)g.AddEdge(n, g.AddNode(kOxygen));
  (void)g.AddEdge(n, g.AddNode(kOxygen));
  return std::move(Pattern::Create(std::move(g))).value();
}

}  // namespace

int main() {
  std::printf("=== Case study: GNN-based drug design (Fig. 10) ===\n\n");
  DatasetScale scale;
  scale.num_graphs = 60;
  GraphDatabase db = MakeDataset(DatasetId::kMutagenicity, scale);

  GcnConfig gcn;
  gcn.input_dim = kNumAtomTypes;
  gcn.hidden_dim = 32;
  gcn.num_classes = 2;
  Rng rng(7);
  GcnModel model(gcn, &rng);
  std::vector<int> all;
  for (int i = 0; i < db.size(); ++i) all.push_back(i);
  TrainConfig tc;
  tc.epochs = 100;
  (void)TrainGcn(&model, db, all, tc);
  (void)AssignPredictedLabels(model, &db);

  const int kMutagen = 1;
  const int gi = db.LabelGroup(kMutagen).front();
  const Graph& g = db.graph(gi);
  std::printf("Explaining mutagen graph #%d (%d atoms, %d bonds)\n\n", gi,
              g.num_nodes(), g.num_edges());

  // GVEX.
  Configuration config;
  config.theta = 0.08f;
  config.r = 0.25f;
  config.default_bound = {2, 8};
  config.miner.max_pattern_nodes = 3;
  ApproxGvex gvex(&model, config);
  auto gvex_ex = gvex.ExplainGraph(g, gi, kMutagen);

  // Baselines.
  GnnExplainerOptions ge_opt;
  ge_opt.epochs = 60;
  GnnExplainer ge(&model, ge_opt);
  auto ge_ex = ge.Explain(g, gi, kMutagen, 14);  // paper: GE needs 14 atoms
  SubgraphX sx(&model);
  auto sx_ex = sx.Explain(g, gi, kMutagen, 10);

  if (gvex_ex.ok()) DescribeExplanation("GVEX", g, gvex_ex.value());
  if (ge_ex.ok()) DescribeExplanation("GNNExplainer", g, ge_ex.value());
  if (sx_ex.ok()) DescribeExplanation("SubgraphX", g, sx_ex.value());

  // The two-tier view over the whole mutagen group.
  auto view = gvex.GenerateView(db, kMutagen);
  if (view.ok()) {
    std::printf("\nGVEX pattern tier for label 'mutagen':\n");
    for (const Pattern& p : view.value().patterns) {
      std::printf("  %s\n", RenderPattern(p, AtomVocab()).c_str());
    }
    ViewStore store(&db);
    store.AddView(view.value());
    Pattern nitro = NitroPattern();
    std::printf("\nQuery: 'which mutagens contain the toxicophore NO2?'\n");
    auto hits = store.DatabaseGraphsWithPattern(nitro, kMutagen);
    std::printf("  -> %zu of %zu mutagens\n", hits.size(),
                db.LabelGroup(kMutagen).size());
    std::printf("Query: 'which NONmutagens contain NO2?'\n");
    auto misses = store.DatabaseGraphsWithPattern(nitro, 0);
    std::printf("  -> %zu (the toxicophore is discriminative)\n",
                misses.size());
  }

  // Ring mining with the gSpan engine (Fig. 10's carbon-ring pattern P32:
  // the level-wise miner only produces trees; gSpan closes cycles).
  std::printf("\ngSpan ring mining over the mutagen molecules:\n");
  std::vector<const Graph*> mutagens;
  for (int mi : db.LabelGroup(kMutagen)) mutagens.push_back(&db.graph(mi));
  MinerOptions gspan_opt;
  gspan_opt.engine = MinerEngine::kGspan;
  gspan_opt.max_pattern_nodes = 6;
  gspan_opt.min_pattern_nodes = 6;
  gspan_opt.min_support = static_cast<int>(mutagens.size());
  auto rings = MineGspan(mutagens, gspan_opt);
  for (const auto& mp : rings) {
    if (mp.pattern.num_edges() >= mp.pattern.num_nodes()) {
      std::printf("  cyclic pattern found: %s (support %d/%zu)\n",
                  RenderPattern(mp.pattern, AtomVocab()).c_str(), mp.support,
                  mutagens.size());
      break;
    }
  }

  // Model-level explanation (XGNN): what does the classifier think a
  // mutagen looks like, with no input molecule at all?
  Xgnn xgnn(&model, &db);
  auto proto = xgnn.Generate(kMutagen);
  if (proto.ok()) {
    std::printf("\nXGNN model-level prototype for 'mutagen' "
                "(P(mutagen)=%.3f):\n  %s\n",
                proto.value().probability,
                RenderPattern(proto.value().pattern, AtomVocab()).c_str());
  }
  return 0;
}
