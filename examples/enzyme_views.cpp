// Fig. 13: explanation views on the ENZYMES-like dataset — three classes
// taken out as examples, showing that the generated views isolate distinct
// subgraph structures per enzyme class.

#include <cstdio>

#include "data/datasets.h"
#include "explain/approx_gvex.h"
#include "explain/metrics.h"
#include "gnn/trainer.h"

using namespace gvex;

int main() {
  std::printf("=== Explanation views on ENZYMES (Fig. 13) ===\n\n");
  DatasetScale scale;
  scale.num_graphs = 60;
  GraphDatabase db = MakeDataset(DatasetId::kEnzymes, scale);

  GcnConfig gcn;
  gcn.input_dim = 3;
  gcn.hidden_dim = 32;
  gcn.num_classes = 6;
  Rng rng(13);
  GcnModel model(gcn, &rng);
  std::vector<int> all;
  for (int i = 0; i < db.size(); ++i) all.push_back(i);
  TrainConfig tc;
  tc.epochs = 120;
  auto report = TrainGcn(&model, db, all, tc);
  std::printf("GCN train accuracy: %.2f\n",
              report.ok() ? report.value().train_accuracy : 0.0f);
  (void)AssignPredictedLabels(model, &db);

  Configuration config;
  config.theta = 0.05f;
  config.r = 0.3f;
  config.default_bound = {2, 8};
  config.miner.max_pattern_nodes = 4;
  config.verify_mode = VerifyMode::kRelaxed;  // 6-way task: fragments rarely
                                              // classify consistently
  ApproxGvex gvex(&model, config);

  const std::vector<std::string> element = {"helix", "sheet", "turn"};
  for (int cls : {0, 1, 2}) {  // three classes, as in Fig. 13
    auto view = gvex.GenerateView(db, cls);
    if (!view.ok()) {
      std::printf("\nClass %d: no view (%s)\n", cls,
                  view.status().ToString().c_str());
      continue;
    }
    std::printf("\nExplanation view %d (class %c):\n", cls + 1, 'A' + cls);
    std::printf("  %s\n", view.value().Summary().c_str());
    for (const Pattern& p : view.value().patterns) {
      std::printf("  pattern %s\n", RenderPattern(p, element).c_str());
    }
    std::printf("  Fidelity+ %.3f, Sparsity %.3f\n",
                FidelityPlus(model, db, view.value().subgraphs),
                Sparsity(db, view.value().subgraphs));
  }
  return 0;
}
