// Case study 2 (Fig. 11): GNN-based social analysis on the REDDIT-like
// dataset, under three configuration scenarios: the user cares about (a)
// only online-discussion threads, (b) only Q&A threads, (c) both classes.
// Expected structure: star-like patterns explain discussions; biclique-like
// patterns explain Q&A.

#include <cstdio>

#include "data/datasets.h"
#include "explain/approx_gvex.h"
#include "explain/view_query.h"
#include "gnn/trainer.h"
#include "pattern/miner.h"

using namespace gvex;

namespace {

// Describes the motif shape of a small pattern (Fig. 11 vocabulary).
const char* ShapeOf(const Pattern& p) {
  const Graph& g = p.graph();
  int max_deg = 0;
  int deg1 = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
    if (g.degree(v) == 1) ++deg1;
  }
  if (max_deg >= 3 && deg1 == g.num_nodes() - 1) return "star (P61-like)";
  if (g.num_edges() > g.num_nodes()) return "dense/biclique (P81-like)";
  if (g.num_edges() == g.num_nodes()) return "cycle";
  return "path/tree";
}

void DescribeView(const ExplanationView& view, const char* class_name) {
  std::printf("Label '%s': %zu subgraphs, %zu covering patterns\n",
              class_name, view.subgraphs.size(), view.patterns.size());
  // Surface motif-scale representative patterns from the explanation
  // subgraphs (min 4 nodes): the structures Fig. 11 visualizes.
  std::vector<const Graph*> subs;
  for (const auto& s : view.subgraphs) subs.push_back(&s.subgraph);
  MinerOptions mopt;
  mopt.min_pattern_nodes = 3;
  mopt.max_pattern_nodes = 5;
  mopt.min_support = std::max<int>(1, static_cast<int>(subs.size()) / 4);
  auto mined = MinePatterns(subs, mopt);
  const size_t show = std::min<size_t>(3, mined.size());
  for (size_t i = 0; i < show; ++i) {
    const auto& mp = mined[i];
    std::printf("  representative pattern: n=%d m=%d support=%d  -> %s\n",
                mp.pattern.num_nodes(), mp.pattern.num_edges(), mp.support,
                ShapeOf(mp.pattern));
  }
}

}  // namespace

int main() {
  std::printf("=== Case study: GNN-based social analysis (Fig. 11) ===\n\n");
  DatasetScale scale;
  scale.num_graphs = 30;
  GraphDatabase db = MakeDataset(DatasetId::kReddit, scale);

  GcnConfig gcn;
  gcn.input_dim = SpecFor(DatasetId::kReddit).feature_dim;
  gcn.hidden_dim = 32;
  gcn.num_classes = 2;
  Rng rng(11);
  GcnModel model(gcn, &rng);
  std::vector<int> all;
  for (int i = 0; i < db.size(); ++i) all.push_back(i);
  TrainConfig tc;
  tc.epochs = 80;
  auto report = TrainGcn(&model, db, all, tc);
  std::printf("GCN train accuracy: %.2f\n\n",
              report.ok() ? report.value().train_accuracy : 0.0f);
  (void)AssignPredictedLabels(model, &db);

  const int kDiscussion = 0;
  const int kQa = 1;

  // Scenario configurations: per-label coverage budgets reflect the user's
  // interest (the "configurable" property of Table 1).
  Configuration config;
  config.theta = 0.05f;
  config.r = 0.3f;
  config.miner.max_pattern_nodes = 4;
  config.coverage[kDiscussion] = {2, 12};
  config.coverage[kQa] = {2, 12};
  ApproxGvex gvex(&model, config);

  std::printf("--- Scenario 1: user cares about discussion threads ---\n");
  auto v_disc = gvex.GenerateView(db, kDiscussion);
  if (v_disc.ok()) DescribeView(v_disc.value(), "online-discussion");

  std::printf("\n--- Scenario 2: user cares about Q&A threads ---\n");
  auto v_qa = gvex.GenerateView(db, kQa);
  if (v_qa.ok()) DescribeView(v_qa.value(), "question-answer");

  std::printf("\n--- Scenario 3: both classes ---\n");
  auto views = gvex.GenerateViews(db, {kDiscussion, kQa});
  if (views.ok()) {
    ViewStore store(&db);
    for (auto& v : views.value()) store.AddView(v);
    for (int label : store.Labels()) {
      auto disc = store.DiscriminativePatterns(label);
      std::printf("Label %d: %zu discriminative patterns (occur in no other "
                  "class's explanations)\n",
                  label, disc.size());
    }
  }
  return 0;
}
